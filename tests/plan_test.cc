// Properties of the plan builder: op counts, coverage, shuffle
// bijection, prefetch-distance semantics, XPLine widening — the plan IS
// the access pattern the simulator times, so these properties gate
// every figure.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "ec/isal.h"
#include "simmem/config.h"

namespace ec {
namespace {

const simmem::ComputeCost kCost{};

std::vector<PlanOp> OpsOfKind(const EncodePlan& p, PlanOp::Kind k) {
  std::vector<PlanOp> out;
  for (const PlanOp& op : p.ops)
    if (op.kind == k) out.push_back(op);
  return out;
}

class PlanShapeTest : public ::testing::TestWithParam<
                          std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(PlanShapeTest, LoadsEveryDataLineExactlyOnce) {
  const auto [k, m, bs] = GetParam();
  const IsalCodec codec(k, m);
  const EncodePlan plan = codec.encode_plan(bs, kCost);
  std::map<std::pair<std::uint16_t, std::uint32_t>, int> seen;
  for (const PlanOp& op : OpsOfKind(plan, PlanOp::Kind::kLoad)) {
    ++seen[{op.block, op.offset}];
  }
  EXPECT_EQ(seen.size(), k * bs / simmem::kCacheLineBytes);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1);
    EXPECT_LT(key.first, k);
    EXPECT_LT(key.second, bs);
    EXPECT_EQ(key.second % simmem::kCacheLineBytes, 0u);
  }
}

TEST_P(PlanShapeTest, StoresEveryParityLineExactlyOnce) {
  const auto [k, m, bs] = GetParam();
  const IsalCodec codec(k, m);
  const EncodePlan plan = codec.encode_plan(bs, kCost);
  std::map<std::pair<std::uint16_t, std::uint32_t>, int> seen;
  for (const PlanOp& op : OpsOfKind(plan, PlanOp::Kind::kStore)) {
    ++seen[{op.block, op.offset}];
  }
  EXPECT_EQ(seen.size(), m * bs / simmem::kCacheLineBytes);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1);
    EXPECT_GE(key.first, k);
    EXPECT_LT(key.first, k + m);
  }
}

TEST_P(PlanShapeTest, ComputeChargedPerLoadedLine) {
  const auto [k, m, bs] = GetParam();
  const IsalCodec codec(k, m);
  const EncodePlan plan = codec.encode_plan(bs, kCost);
  const std::size_t lines = k * bs / simmem::kCacheLineBytes;
  const double expect =
      lines * (kCost.per_line_overhead_cycles +
               m * kCost.avx512_cycles_per_line_parity);
  EXPECT_NEAR(plan.total_compute_cycles(), expect, 1e-6);
}

TEST_P(PlanShapeTest, RowInterleavedOrder) {
  // Stock ISA-L: the k loads of row r come before any load of row r+1.
  const auto [k, m, bs] = GetParam();
  const IsalCodec codec(k, m);
  const EncodePlan plan = codec.encode_plan(bs, kCost);
  std::uint32_t current_offset = 0;
  std::size_t in_row = 0;
  for (const PlanOp& op : OpsOfKind(plan, PlanOp::Kind::kLoad)) {
    if (in_row == k) {
      in_row = 0;
      current_offset += simmem::kCacheLineBytes;
    }
    EXPECT_EQ(op.offset, current_offset);
    ++in_row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanShapeTest,
    ::testing::Values(std::make_tuple(4, 2, 256),
                      std::make_tuple(12, 4, 1024),
                      std::make_tuple(28, 24, 1024),
                      std::make_tuple(48, 4, 4096),
                      std::make_tuple(12, 4, 5120)));

TEST(ShuffledOrder, IsBijection) {
  for (const std::size_t rows : {4u, 16u, 64u, 80u, 128u}) {
    const auto order = ShuffledRowOrder(rows);
    ASSERT_EQ(order.size(), rows);
    std::set<std::size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), rows);
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), rows - 1);
  }
}

TEST(ShuffledOrder, NeverStepsPlusOne) {
  for (const std::size_t rows : {8u, 16u, 64u, 128u}) {
    const auto order = ShuffledRowOrder(rows);
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_NE(order[i], order[i - 1] + 1)
          << "rows=" << rows << " at i=" << i
          << ": +1 delta would train the streamer";
    }
  }
}

TEST(PlanOptions, ShufflePreservesCoverage) {
  const IsalCodec codec(12, 4);
  IsalPlanOptions opts;
  opts.shuffle_rows = true;
  const EncodePlan plan = codec.encode_plan_with(1024, kCost, opts);
  const EncodePlan plain = codec.encode_plan(1024, kCost);
  // Same multiset of loads/stores, different order.
  auto key_set = [](const EncodePlan& p, PlanOp::Kind k) {
    std::multiset<std::pair<std::uint16_t, std::uint32_t>> s;
    for (const PlanOp& op : p.ops)
      if (op.kind == k) s.insert({op.block, op.offset});
    return s;
  };
  EXPECT_EQ(key_set(plan, PlanOp::Kind::kLoad),
            key_set(plain, PlanOp::Kind::kLoad));
  EXPECT_EQ(key_set(plan, PlanOp::Kind::kStore),
            key_set(plain, PlanOp::Kind::kStore));
}

TEST(PlanOptions, PrefetchTargetsLeadLoadsByDistance) {
  const std::size_t k = 4, bs = 1024, d = 7;
  const IsalCodec codec(k, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = d;
  const EncodePlan plan = codec.encode_plan_with(bs, kCost, opts);

  // Reconstruct the load task order and check: the i-th prefetch (which
  // precedes the i-th load) targets the (i+d)-th load's line.
  std::vector<std::pair<std::uint16_t, std::uint32_t>> loads;
  for (const PlanOp& op : plan.ops)
    if (op.kind == PlanOp::Kind::kLoad) loads.push_back({op.block, op.offset});

  std::size_t li = 0;
  for (const PlanOp& op : plan.ops) {
    if (op.kind == PlanOp::Kind::kPrefetch) {
      ASSERT_LT(li + d, loads.size());
      EXPECT_EQ(op.block, loads[li + d].first);
      EXPECT_EQ(op.offset, loads[li + d].second);
    } else if (op.kind == PlanOp::Kind::kLoad) {
      ++li;
    }
  }
}

TEST(PlanOptions, PrefetchCountSkipsTail) {
  const std::size_t k = 4, bs = 1024, d = 10;
  const IsalCodec codec(k, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = d;
  const EncodePlan plan = codec.encode_plan_with(bs, kCost, opts);
  const std::size_t loads = plan.count(PlanOp::Kind::kLoad);
  EXPECT_EQ(plan.count(PlanOp::Kind::kPrefetch), loads - d)
      << "tail tasks revert to the plain kernel";
}

TEST(PlanOptions, EveryLinePrefetchedOnceUnderSplitDistances) {
  const IsalCodec codec(8, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = 8;
  opts.xpline_first_distance = 12;
  const EncodePlan plan = codec.encode_plan_with(2048, kCost, opts);
  std::map<std::pair<std::uint16_t, std::uint32_t>, int> pf;
  for (const PlanOp& op : plan.ops)
    if (op.kind == PlanOp::Kind::kPrefetch) ++pf[{op.block, op.offset}];
  for (const auto& [key, n] : pf) {
    EXPECT_EQ(n, 1) << "line prefetched " << n << " times";
  }
  EXPECT_GT(pf.size(), 0u);
}

TEST(PlanOptions, SplitDistancesClassifyByXpLine) {
  const std::size_t d = 6, d_first = 10;
  const IsalCodec codec(4, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = d;
  opts.xpline_first_distance = d_first;
  const EncodePlan plan = codec.encode_plan_with(1024, kCost, opts);

  std::vector<std::pair<std::uint16_t, std::uint32_t>> loads;
  for (const PlanOp& op : plan.ops)
    if (op.kind == PlanOp::Kind::kLoad) loads.push_back({op.block, op.offset});
  std::map<std::pair<std::uint16_t, std::uint32_t>, std::size_t> load_index;
  for (std::size_t i = 0; i < loads.size(); ++i) load_index[loads[i]] = i;

  std::size_t li = 0;
  for (const PlanOp& op : plan.ops) {
    if (op.kind == PlanOp::Kind::kPrefetch) {
      const std::size_t target = load_index.at({op.block, op.offset});
      const bool opens = op.offset % simmem::kXpLineBytes == 0;
      EXPECT_EQ(target - li, opens ? d_first : d)
          << "offset=" << op.offset;
    } else if (op.kind == PlanOp::Kind::kLoad) {
      ++li;
    }
  }
}

TEST(PlanOptions, TailOffsetRestrictsPrefetchTargets) {
  const IsalCodec codec(4, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = 6;
  opts.prefetch_tail_offset = 4096;  // 5 KiB block: prefetch last 1 KiB
  const EncodePlan plan = codec.encode_plan_with(5120, kCost, opts);
  std::size_t prefetches = 0;
  for (const PlanOp& op : plan.ops) {
    if (op.kind != PlanOp::Kind::kPrefetch) continue;
    EXPECT_GE(op.offset, 4096u);
    ++prefetches;
  }
  EXPECT_GT(prefetches, 0u);
  // Only the 1 KiB tail's lines are prefetched.
  EXPECT_LE(prefetches, 4u * 1024u / 64u);
}

TEST(PlanOptions, WidenToXpLineGroupsFourRowsPerBlock) {
  const std::size_t k = 3, bs = 1024;
  const IsalCodec codec(k, 2);
  IsalPlanOptions opts;
  opts.widen_to_xpline = true;
  const EncodePlan plan = codec.encode_plan_with(bs, kCost, opts);
  // Load order: 4 consecutive rows of block 0, then 4 of block 1, ...
  std::vector<PlanOp> loads = OpsOfKind(plan, PlanOp::Kind::kLoad);
  ASSERT_EQ(loads.size(), k * bs / 64);
  for (std::size_t i = 0; i < loads.size(); i += 4) {
    for (std::size_t j = 1; j < 4; ++j) {
      EXPECT_EQ(loads[i + j].block, loads[i].block);
      EXPECT_EQ(loads[i + j].offset, loads[i].offset + j * 64);
    }
    EXPECT_EQ(loads[i].offset % simmem::kXpLineBytes, 0u);
  }
}

TEST(PlanOptions, NaivePrefetchPenaltyChargesExtraCycles) {
  const IsalCodec codec(4, 2);
  IsalPlanOptions cheap;
  cheap.prefetch_distance = 6;
  IsalPlanOptions pricey = cheap;
  pricey.naive_prefetch_penalty_cycles = 14.0;
  const EncodePlan a = codec.encode_plan_with(1024, kCost, cheap);
  const EncodePlan b = codec.encode_plan_with(1024, kCost, pricey);
  const std::size_t prefetches = a.count(PlanOp::Kind::kPrefetch);
  EXPECT_NEAR(b.total_compute_cycles() - a.total_compute_cycles(),
              14.0 * prefetches, 1e-6);
}

TEST(DecodePlan, LoadsSurvivorsStoresErased) {
  const std::size_t k = 6, m = 3, bs = 512;
  const IsalCodec codec(k, m);
  const std::vector<std::size_t> erasures{1, 4};
  const EncodePlan plan = codec.decode_plan(bs, kCost, erasures);

  std::set<std::uint16_t> load_blocks, store_blocks;
  for (const PlanOp& op : plan.ops) {
    if (op.kind == PlanOp::Kind::kLoad) load_blocks.insert(op.block);
    if (op.kind == PlanOp::Kind::kStore) store_blocks.insert(op.block);
  }
  EXPECT_EQ(load_blocks.size(), k) << "decode reads exactly k survivors";
  EXPECT_EQ(load_blocks.count(1), 0u);
  EXPECT_EQ(load_blocks.count(4), 0u);
  EXPECT_EQ(store_blocks, std::set<std::uint16_t>({1, 4}));
}

TEST(EncodePlan, EndsWithPersistenceFence) {
  const IsalCodec codec(4, 2);
  const EncodePlan plan = codec.encode_plan(1024, kCost);
  ASSERT_FALSE(plan.ops.empty());
  EXPECT_EQ(plan.ops.back().kind, PlanOp::Kind::kFence);
  EXPECT_EQ(plan.count(PlanOp::Kind::kFence), 1u);
}

TEST(EncodePlan, CountersAndDataBytes) {
  const IsalCodec codec(4, 2);
  const EncodePlan plan = codec.encode_plan(1024, kCost);
  EXPECT_EQ(plan.data_bytes(), 4u * 1024u);
  EXPECT_EQ(plan.count(PlanOp::Kind::kLoad), 4u * 16u);
  EXPECT_EQ(plan.count(PlanOp::Kind::kStore), 2u * 16u);
  EXPECT_EQ(plan.count(PlanOp::Kind::kPrefetch), 0u);
  EXPECT_EQ(plan.num_slots(), 6u);
}

}  // namespace
}  // namespace ec
