// Analytical cross-validation of the simulator: for access patterns
// simple enough to solve in closed form, the simulated time must match
// the arithmetic. These tests validate the timing composition rules
// (latency, bandwidth queueing, implicit XPLine loads, compute overlap)
// independently of any erasure-coding workload.
#include <gtest/gtest.h>

#include "simmem/address_space.h"
#include "simmem/memory_system.h"

namespace simmem {
namespace {

SimConfig PlainCfg() {
  SimConfig cfg;
  cfg.prefetcher.enabled = false;  // closed forms assume no prefetch
  return cfg;
}

TEST(Analytical, PmPointerChaseLatency) {
  // N cold loads, each a fresh XPLine on a rotating channel, no
  // bandwidth pressure: T = N * media_latency (+ epsilon hit costs).
  const SimConfig cfg = PlainCfg();
  MemorySystem mem(cfg, 1);
  const std::size_t n = 200;
  for (std::size_t i = 0; i < n; ++i) {
    mem.load(0, kPmBase + i * kPageBytes);  // new page each time
  }
  const double expect = static_cast<double>(n) * cfg.pm.media_latency_ns;
  EXPECT_NEAR(mem.clock(0), expect, 0.02 * expect);
}

TEST(Analytical, PmSequentialReadAmortizesXpLine) {
  // Sequential 64 B loads: 1 in 4 pays media latency, 3 in 4 pay the
  // buffer hit: T/line = (media + 3*buffer) / 4.
  const SimConfig cfg = PlainCfg();
  MemorySystem mem(cfg, 1);
  const std::size_t lines = 512;  // stays inside one page x many pages
  for (std::size_t i = 0; i < lines; ++i) {
    mem.load(0, kPmBase + i * kCacheLineBytes);
  }
  const double per_line =
      (cfg.pm.media_latency_ns + 3.0 * cfg.pm.buffer_hit_latency_ns) / 4.0;
  EXPECT_NEAR(mem.clock(0) / lines, per_line, 0.05 * per_line);
}

TEST(Analytical, DramStreamLatency) {
  const SimConfig cfg = PlainCfg();
  MemorySystem mem(cfg, 1);
  const std::size_t lines = 512;
  for (std::size_t i = 0; i < lines; ++i) {
    mem.load(0, kDramBase + i * kCacheLineBytes);
  }
  EXPECT_NEAR(mem.clock(0) / lines, cfg.dram.load_latency_ns,
              0.05 * cfg.dram.load_latency_ns);
}

TEST(Analytical, ComputeTimeIsCyclesOverFrequency) {
  SimConfig cfg = PlainCfg();
  cfg.cpu_freq_ghz = 2.5;
  MemorySystem mem(cfg, 1);
  mem.compute_cycles(0, 1000.0);
  EXPECT_DOUBLE_EQ(mem.clock(0), 400.0);  // 1000 / 2.5 ns
}

TEST(Analytical, MediaBandwidthBoundsMissRate) {
  // Hammer ONE channel with distinct XPLines: completion rate cannot
  // exceed the per-channel media bandwidth (256 B / service).
  const SimConfig cfg = PlainCfg();
  MemorySystem mem(cfg, 1);
  const std::size_t misses = 400;
  for (std::size_t i = 0; i < misses; ++i) {
    // Same channel: advance by interleave * channels each step, and use
    // a fresh XPLine within it.
    const std::uint64_t addr =
        kPmBase + i * cfg.pm.interleave_bytes * cfg.pm.channels;
    mem.load(0, addr);
  }
  const double service_ns =
      static_cast<double>(kXpLineBytes) / cfg.pm.media_read_gbps_per_channel;
  // Latency-bound regime here (no outstanding overlap), so the lower
  // bound is just a sanity check; the upper bound is the latency chain.
  EXPECT_GE(mem.clock(0), misses * service_ns);
  EXPECT_NEAR(mem.clock(0), misses * cfg.pm.media_latency_ns,
              0.02 * misses * cfg.pm.media_latency_ns);
}

TEST(Analytical, NtStoreThroughputBoundedByWritePath) {
  // Enough sequential NT stores to one channel overflow the combining
  // buffer; steady state is bounded by write bandwidth at XPLine
  // granularity. After a final fence, T >= bytes / write_bw.
  const SimConfig cfg = PlainCfg();
  MemorySystem mem(cfg, 1);
  const std::size_t lines = 4096;  // 1 MiB to one channel region set
  for (std::size_t i = 0; i < lines; ++i) {
    const std::uint64_t page = i / 64;
    const std::uint64_t addr = kPmBase +
                               page * cfg.pm.interleave_bytes *
                                   cfg.pm.channels +
                               (i % 64) * kCacheLineBytes;
    mem.store_nt(0, addr);
  }
  mem.fence(0);
  const double bytes = static_cast<double>(lines) * kCacheLineBytes;
  const double min_time = bytes / cfg.pm.media_write_gbps_per_channel -
                          static_cast<double>(
                              cfg.pm.write_buffer_bytes_per_channel) /
                              cfg.pm.media_write_gbps_per_channel;
  EXPECT_GE(mem.clock(0), min_time * 0.95);
}

TEST(Analytical, EncodeLowerBoundFromComputePlusStalls) {
  // For any run: total time >= compute time, and total time >=
  // accumulated load stalls / threads. Checks accounting consistency.
  const SimConfig cfg = PlainCfg();
  MemorySystem mem(cfg, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    mem.load(0, kPmBase + i * kPageBytes);
    mem.compute_cycles(0, 33.0);
  }
  EXPECT_GE(mem.clock(0) + 1e-6, mem.pmu().load_stall_ns);
  EXPECT_GE(mem.clock(0) + 1e-6,
            100 * 33.0 / cfg.cpu_freq_ghz);
  EXPECT_NEAR(mem.clock(0),
              mem.pmu().load_stall_ns + 100 * 33.0 / cfg.cpu_freq_ghz,
              1.0);
}

TEST(Analytical, TwoCoresShareMediaBandwidth) {
  // Both cores hammer the same channel with distinct XPLines. With the
  // media slowed so one channel cannot sustain two latency-bound
  // requesters (2 x 256 B / 250 ns > bandwidth), queueing delay must
  // appear on the contending core.
  SimConfig cfg = PlainCfg();
  cfg.pm.media_read_gbps_per_channel = 0.5;  // service 512 ns > latency
  MemorySystem solo(cfg, 1);
  MemorySystem pair(cfg, 2);
  const std::size_t misses = 64;
  for (std::size_t i = 0; i < misses; ++i) {
    const std::uint64_t stride = cfg.pm.interleave_bytes * cfg.pm.channels;
    solo.load(0, kPmBase + i * stride);
    pair.load(0, kPmBase + (2 * i) * stride);
    pair.load(1, kPmBase + (2 * i + 1) * stride);
  }
  // Core 1 of the pair competes with core 0 for the channel: its clock
  // must exceed the uncontended chain.
  EXPECT_GT(pair.clock(1), solo.clock(0) * 1.05);
}

}  // namespace
}  // namespace simmem
