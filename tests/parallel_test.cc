#include "ec/parallel.h"

#include <gtest/gtest.h>

#include <random>

#include "dialga/dialga.h"
#include "ec/isal.h"

namespace ec {
namespace {

struct Corpus {
  std::size_t k, m, bs, stripes;
  std::vector<std::vector<std::byte>> storage;  // stripes x (k+m) blocks
  std::vector<std::vector<const std::byte*>> data_ptrs;
  std::vector<std::vector<std::byte*>> parity_ptrs;
  std::vector<StripeBuffers> buffers;

  Corpus(std::size_t k_, std::size_t m_, std::size_t bs_, std::size_t n,
         std::uint64_t seed)
      : k(k_), m(m_), bs(bs_), stripes(n) {
    std::mt19937_64 rng(seed);
    storage.resize(n * (k + m), std::vector<std::byte>(bs));
    data_ptrs.resize(n);
    parity_ptrs.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t i = 0; i < k; ++i) {
        auto& blk = storage[s * (k + m) + i];
        for (auto& b : blk) b = static_cast<std::byte>(rng());
        data_ptrs[s].push_back(blk.data());
      }
      for (std::size_t j = 0; j < m; ++j) {
        parity_ptrs[s].push_back(storage[s * (k + m) + k + j].data());
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      buffers.push_back({data_ptrs[s], parity_ptrs[s]});
    }
  }
};

TEST(ParallelEncode, MatchesSerialEncode) {
  const IsalCodec codec(6, 3);
  Corpus serial(6, 3, 512, 24, 9);
  Corpus parallel(6, 3, 512, 24, 9);
  for (const StripeBuffers& sb : serial.buffers) {
    codec.encode(512, sb.data, sb.parity);
  }
  ParallelEncode(codec, 512, parallel.buffers, 4);
  EXPECT_EQ(serial.storage, parallel.storage);
}

TEST(ParallelEncode, SingleThreadAndZeroAutoWork) {
  const dialga::DialgaCodec codec(4, 2);
  Corpus a(4, 2, 256, 7, 3);
  Corpus b(4, 2, 256, 7, 3);
  ParallelEncode(codec, 256, a.buffers, 1);
  ParallelEncode(codec, 256, b.buffers, 0);  // hardware concurrency
  EXPECT_EQ(a.storage, b.storage);
}

TEST(ParallelEncode, EmptyIsNoOp) {
  const IsalCodec codec(4, 2);
  ParallelEncode(codec, 256, {}, 8);  // must not crash or hang
}

TEST(ParallelDecode, RepairsManyStripes) {
  const IsalCodec codec(5, 2);
  Corpus corpus(5, 2, 512, 16, 5);
  ParallelEncode(codec, 512, corpus.buffers, 2);
  const auto golden = corpus.storage;

  // Damage two blocks of every stripe.
  std::vector<std::vector<std::byte*>> all(corpus.stripes);
  const std::vector<std::size_t> erasures{1, 5};
  std::vector<DecodeJob> jobs;
  for (std::size_t s = 0; s < corpus.stripes; ++s) {
    for (std::size_t b = 0; b < 7; ++b) {
      all[s].push_back(corpus.storage[s * 7 + b].data());
    }
    for (const std::size_t e : erasures) {
      std::fill(corpus.storage[s * 7 + e].begin(),
                corpus.storage[s * 7 + e].end(), std::byte{0});
    }
    jobs.push_back({all[s], erasures});
  }
  EXPECT_EQ(ParallelDecode(codec, 512, jobs, 4), 0u);
  EXPECT_EQ(corpus.storage, golden);
}

TEST(ParallelDecode, CountsFailures) {
  const IsalCodec codec(4, 2);
  Corpus corpus(4, 2, 256, 3, 7);
  ParallelEncode(codec, 256, corpus.buffers, 2);
  std::vector<std::vector<std::byte*>> all(corpus.stripes);
  const std::vector<std::size_t> too_many{0, 1, 2};
  std::vector<DecodeJob> jobs;
  for (std::size_t s = 0; s < corpus.stripes; ++s) {
    for (std::size_t b = 0; b < 6; ++b) {
      all[s].push_back(corpus.storage[s * 6 + b].data());
    }
    jobs.push_back({all[s], too_many});
  }
  EXPECT_EQ(ParallelDecode(codec, 256, jobs, 3), 3u);
}

}  // namespace
}  // namespace ec
