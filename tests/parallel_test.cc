#include "ec/parallel.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "dialga/dialga.h"
#include "ec/isal.h"
#include "ec/thread_pool.h"

namespace ec {
namespace {

struct Corpus {
  std::size_t k, m, bs, stripes;
  std::vector<std::vector<std::byte>> storage;  // stripes x (k+m) blocks
  std::vector<std::vector<const std::byte*>> data_ptrs;
  std::vector<std::vector<std::byte*>> parity_ptrs;
  std::vector<StripeBuffers> buffers;

  Corpus(std::size_t k_, std::size_t m_, std::size_t bs_, std::size_t n,
         std::uint64_t seed)
      : k(k_), m(m_), bs(bs_), stripes(n) {
    std::mt19937_64 rng(seed);
    storage.resize(n * (k + m), std::vector<std::byte>(bs));
    data_ptrs.resize(n);
    parity_ptrs.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t i = 0; i < k; ++i) {
        auto& blk = storage[s * (k + m) + i];
        for (auto& b : blk) b = static_cast<std::byte>(rng());
        data_ptrs[s].push_back(blk.data());
      }
      for (std::size_t j = 0; j < m; ++j) {
        parity_ptrs[s].push_back(storage[s * (k + m) + k + j].data());
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      buffers.push_back({data_ptrs[s], parity_ptrs[s]});
    }
  }
};

TEST(ParallelEncode, MatchesSerialEncode) {
  const IsalCodec codec(6, 3);
  Corpus serial(6, 3, 512, 24, 9);
  Corpus parallel(6, 3, 512, 24, 9);
  for (const StripeBuffers& sb : serial.buffers) {
    codec.encode(512, sb.data, sb.parity);
  }
  ParallelEncode(codec, 512, parallel.buffers, 4);
  EXPECT_EQ(serial.storage, parallel.storage);
}

TEST(ParallelEncode, SingleThreadAndZeroAutoWork) {
  const dialga::DialgaCodec codec(4, 2);
  Corpus a(4, 2, 256, 7, 3);
  Corpus b(4, 2, 256, 7, 3);
  ParallelEncode(codec, 256, a.buffers, 1);
  ParallelEncode(codec, 256, b.buffers, 0);  // hardware concurrency
  EXPECT_EQ(a.storage, b.storage);
}

TEST(ParallelEncode, EmptyIsNoOp) {
  const IsalCodec codec(4, 2);
  ParallelEncode(codec, 256, {}, 8);  // must not crash or hang
}

TEST(ParallelDecode, RepairsManyStripes) {
  const IsalCodec codec(5, 2);
  Corpus corpus(5, 2, 512, 16, 5);
  ParallelEncode(codec, 512, corpus.buffers, 2);
  const auto golden = corpus.storage;

  // Damage two blocks of every stripe.
  std::vector<std::vector<std::byte*>> all(corpus.stripes);
  const std::vector<std::size_t> erasures{1, 5};
  std::vector<DecodeJob> jobs;
  for (std::size_t s = 0; s < corpus.stripes; ++s) {
    for (std::size_t b = 0; b < 7; ++b) {
      all[s].push_back(corpus.storage[s * 7 + b].data());
    }
    for (const std::size_t e : erasures) {
      std::fill(corpus.storage[s * 7 + e].begin(),
                corpus.storage[s * 7 + e].end(), std::byte{0});
    }
    jobs.push_back({all[s], erasures});
  }
  EXPECT_EQ(ParallelDecode(codec, 512, jobs, 4), 0u);
  EXPECT_EQ(corpus.storage, golden);
}

TEST(ParallelDecode, CountsFailures) {
  const IsalCodec codec(4, 2);
  Corpus corpus(4, 2, 256, 3, 7);
  ParallelEncode(codec, 256, corpus.buffers, 2);
  std::vector<std::vector<std::byte*>> all(corpus.stripes);
  const std::vector<std::size_t> too_many{0, 1, 2};
  std::vector<DecodeJob> jobs;
  for (std::size_t s = 0; s < corpus.stripes; ++s) {
    for (std::size_t b = 0; b < 6; ++b) {
      all[s].push_back(corpus.storage[s * 6 + b].data());
    }
    jobs.push_back({all[s], too_many});
  }
  EXPECT_EQ(ParallelDecode(codec, 256, jobs, 3), 3u);
}

TEST(ParallelDecode, ReportsFailedJobIndices) {
  const IsalCodec codec(4, 2);
  Corpus corpus(4, 2, 256, 6, 11);
  ParallelEncode(codec, 256, corpus.buffers, 2);

  // Jobs 1 and 4 erase three blocks of an RS(4,2) stripe — beyond any
  // repair — the rest erase one and must succeed.
  const std::vector<std::size_t> fatal{0, 1, 2};
  const std::vector<std::size_t> fixable{5};
  std::vector<std::vector<std::byte*>> all(corpus.stripes);
  std::vector<DecodeJob> jobs;
  for (std::size_t s = 0; s < corpus.stripes; ++s) {
    for (std::size_t b = 0; b < 6; ++b) {
      all[s].push_back(corpus.storage[s * 6 + b].data());
    }
    const auto& erasures = (s == 1 || s == 4) ? fatal : fixable;
    for (const std::size_t e : erasures) {
      std::fill(corpus.storage[s * 6 + e].begin(),
                corpus.storage[s * 6 + e].end(), std::byte{0});
    }
    jobs.push_back({all[s], erasures});
  }
  std::vector<std::size_t> failed;
  EXPECT_EQ(ParallelDecode(codec, 256, jobs, 4, &failed), 2u);
  EXPECT_EQ(failed, (std::vector<std::size_t>{1, 4}));

  // The serial path reports the same thing.
  failed.clear();
  EXPECT_EQ(ParallelDecode(codec, 256, jobs, 1, &failed), 2u);
  EXPECT_EQ(failed, (std::vector<std::size_t>{1, 4}));
}

/// Codec whose encode/decode throw for one marked stripe — the
/// regression for worker-thread exception safety: before the pool,
/// a throw on a worker called std::terminate.
class ThrowingCodec : public Codec {
 public:
  ThrowingCodec(const Codec& inner, const std::byte* poisoned_block)
      : inner_(inner), poisoned_(poisoned_block) {}

  std::string name() const override { return "throwing"; }
  CodeParams params() const override { return inner_.params(); }
  SimdWidth simd() const override { return inner_.simd(); }

  void encode(std::size_t block_size,
              std::span<const std::byte* const> data,
              std::span<std::byte* const> parity) const override {
    if (!data.empty() && data[0] == poisoned_)
      throw std::runtime_error("media fault during encode");
    inner_.encode(block_size, data, parity);
  }
  bool decode(std::size_t block_size, std::span<std::byte* const> blocks,
              std::span<const std::size_t> erasures) const override {
    if (!blocks.empty() && blocks[0] == poisoned_)
      throw std::runtime_error("media fault during decode");
    return inner_.decode(block_size, blocks, erasures);
  }
  EncodePlan encode_plan(std::size_t block_size,
                         const simmem::ComputeCost& cost) const override {
    return inner_.encode_plan(block_size, cost);
  }
  EncodePlan decode_plan(std::size_t block_size,
                         const simmem::ComputeCost& cost,
                         std::span<const std::size_t> erasures)
      const override {
    return inner_.decode_plan(block_size, cost, erasures);
  }

 private:
  const Codec& inner_;
  const std::byte* poisoned_;
};

TEST(ParallelEncode, WorkerExceptionReachesCaller) {
  const IsalCodec inner(4, 2);
  Corpus corpus(4, 2, 256, 12, 21);
  const ThrowingCodec codec(inner, corpus.data_ptrs[7][0]);
  try {
    ParallelEncode(codec, 256, corpus.buffers, 4);
    FAIL() << "worker exception must rethrow on the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "media fault during encode");
  }
  // The serial path throws identically.
  EXPECT_THROW(ParallelEncode(codec, 256, corpus.buffers, 1),
               std::runtime_error);
}

TEST(ParallelDecode, WorkerExceptionReachesCaller) {
  const IsalCodec inner(4, 2);
  Corpus corpus(4, 2, 256, 8, 23);
  ParallelEncode(inner, 256, corpus.buffers, 2);
  std::vector<std::vector<std::byte*>> all(corpus.stripes);
  const std::vector<std::size_t> erasures{1};
  std::vector<DecodeJob> jobs;
  for (std::size_t s = 0; s < corpus.stripes; ++s) {
    for (std::size_t b = 0; b < 6; ++b) {
      all[s].push_back(corpus.storage[s * 6 + b].data());
    }
    jobs.push_back({all[s], erasures});
  }
  const ThrowingCodec codec(inner, all[3][0]);
  EXPECT_THROW(ParallelDecode(codec, 256, jobs, 4), std::runtime_error);
}

TEST(ParallelEncode, ExplicitPoolIsReusedAcrossCalls) {
  ThreadPool pool(2);
  const IsalCodec codec(4, 2);
  Corpus a(4, 2, 256, 9, 31);
  Corpus b(4, 2, 256, 9, 31);
  ParallelEncode(pool, codec, 256, a.buffers);
  ParallelEncode(pool, codec, 256, b.buffers);
  EXPECT_EQ(a.storage, b.storage);
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.parallel_fors, 2u);
  EXPECT_EQ(s.tasks_run, 18u);  // 9 stripes per call, one task each
}

TEST(ParallelRoundTrip, RandomStripesMatchSerialPath) {
  std::mt19937_64 rng(77);
  ThreadPool pool(3);
  for (int round = 0; round < 4; ++round) {
    const std::size_t k = 2 + rng() % 8;
    const std::size_t m = 1 + rng() % 3;
    const std::size_t bs = 256u << (rng() % 2);
    const std::size_t stripes = 4 + rng() % 12;
    const IsalCodec codec(k, m);

    Corpus serial(k, m, bs, stripes, 1000 + round);
    Corpus pooled(k, m, bs, stripes, 1000 + round);
    for (const StripeBuffers& sb : serial.buffers) {
      codec.encode(bs, sb.data, sb.parity);
    }
    ParallelEncode(pool, codec, bs, pooled.buffers);
    ASSERT_EQ(serial.storage, pooled.storage) << "round " << round;

    // Erase one random data block per stripe and decode both ways.
    Corpus damaged_serial = serial;
    Corpus damaged_pooled = pooled;
    const std::vector<std::size_t> erasures{rng() % k};
    const auto make_jobs = [&](Corpus& c,
                               std::vector<std::vector<std::byte*>>& all) {
      std::vector<DecodeJob> jobs;
      for (std::size_t s = 0; s < c.stripes; ++s) {
        for (std::size_t b = 0; b < k + m; ++b) {
          all[s].push_back(c.storage[s * (k + m) + b].data());
        }
        std::fill(c.storage[s * (k + m) + erasures[0]].begin(),
                  c.storage[s * (k + m) + erasures[0]].end(), std::byte{0});
        jobs.push_back({all[s], erasures});
      }
      return jobs;
    };
    std::vector<std::vector<std::byte*>> all_s(stripes), all_p(stripes);
    const auto jobs_s = make_jobs(damaged_serial, all_s);
    const auto jobs_p = make_jobs(damaged_pooled, all_p);
    EXPECT_EQ(ParallelDecode(codec, bs, jobs_s, 1), 0u);
    EXPECT_EQ(ParallelDecode(pool, codec, bs, jobs_p), 0u);
    EXPECT_EQ(damaged_serial.storage, serial.storage);
    EXPECT_EQ(damaged_pooled.storage, serial.storage);
  }
}

}  // namespace
}  // namespace ec
