// Corruption chaos matrix: seeded data-corrupting fault injection over
// every corruption site, asserting the silent-corruption defenses hold
// their three invariants —
//   1. corrupt bytes are never returned as clean data,
//   2. acknowledged data within the parity budget is never lost,
//   3. scrub + read-repair converge every injected generation back to
//      verified-clean (or name the loss explicitly).
// CHAOS_SEED narrows the matrix to one seed when reproducing a failure;
// the effective plan for any run is printable via Injector::describe().
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/local_cluster.h"
#include "dialga/dialga.h"
#include "fault/injector.h"
#include "pmpool/pool.h"
#include "shard/shard_store.h"

namespace {

namespace fs = std::filesystem;

std::vector<std::uint64_t> Seeds() {
  if (const char* s = std::getenv("CHAOS_SEED")) {
    return {std::strtoull(s, nullptr, 10)};
  }
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

struct InjectorReset {
  InjectorReset() { fault::Injector::Global().clear(); }
  ~InjectorReset() { fault::Injector::Global().clear(); }
};

std::string MakePayload(std::size_t n, std::uint64_t seed) {
  std::string payload(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<char>((i * 131 + seed * 89 + 17) & 0xff);
  }
  return payload;
}

void WriteFileBytes(const fs::path& p, const std::string& s) {
  std::ofstream(p, std::ios::binary) << s;
}

std::string ReadFileBytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// --- Injector corruption mechanics ---------------------------------------

TEST(CorruptionInjector, ReplaysBitIdenticallyFromSeedSiteOp) {
  InjectorReset reset;
  auto& in = fault::Injector::Global();
  auto run = [&] {
    in.clear();
    in.set_seed(99);
    fault::SitePlan plan;
    plan.every = 1;
    plan.corrupt = fault::CorruptKind::kTorn;
    plan.corrupt_span = 8;
    in.install("x.corrupt", plan);
    std::vector<std::vector<unsigned char>> bufs;
    for (int op = 0; op < 5; ++op) {
      std::vector<unsigned char> buf(64, 0xAB);
      const auto c = in.fire_corruption("x.corrupt");
      EXPECT_TRUE(c.has_value());
      if (c) fault::ApplyCorruption(*c, buf.data(), buf.size());
      bufs.push_back(std::move(buf));
    }
    return bufs;
  };
  // Same (seed, site, op#) sequence => same mutations, buffer for
  // buffer — and distinct ops mutate distinct bytes (tokens differ).
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a[0], a[1]);
}

TEST(CorruptionInjector, DeterministicAcrossReinstall) {
  InjectorReset reset;
  auto& in = fault::Injector::Global();
  auto run = [&] {
    in.clear();
    in.set_seed(7);
    fault::SitePlan plan;
    plan.every = 2;
    plan.corrupt = fault::CorruptKind::kBitFlip;
    in.install("shard.read.corrupt", plan);
    std::vector<std::vector<unsigned char>> out;
    for (int op = 0; op < 8; ++op) {
      std::vector<unsigned char> buf(128, 0x5C);
      fault::MaybeCorrupt("shard.read.corrupt", buf.data(), buf.size());
      out.push_back(std::move(buf));
    }
    return out;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // every=2: ops 2,4,6,8 fire — exactly 4 buffers differ from clean.
  std::size_t changed = 0;
  for (const auto& buf : a) {
    if (buf != std::vector<unsigned char>(128, 0x5C)) ++changed;
  }
  EXPECT_EQ(changed, 4u);
}

TEST(CorruptionInjector, KindsMutateAsSpecified) {
  InjectorReset reset;
  auto& in = fault::Injector::Global();
  in.set_seed(3);

  {
    fault::SitePlan plan;
    plan.every = 1;
    plan.corrupt = fault::CorruptKind::kBitFlip;
    in.install("k.flip", plan);
    std::vector<unsigned char> buf(64, 0);
    ASSERT_TRUE(fault::MaybeCorrupt("k.flip", buf.data(), buf.size()));
    int bits = 0;
    for (unsigned char byte : buf) bits += __builtin_popcount(byte);
    EXPECT_EQ(bits, 1);  // exactly one bit flipped
  }
  {
    fault::SitePlan plan;
    plan.every = 1;
    plan.corrupt = fault::CorruptKind::kStaleZero;
    plan.corrupt_span = 16;
    in.install("k.zero", plan);
    std::vector<unsigned char> buf(64, 0xFF);
    ASSERT_TRUE(fault::MaybeCorrupt("k.zero", buf.data(), buf.size()));
    std::size_t zeroed = 0;
    for (unsigned char byte : buf) {
      if (byte == 0) ++zeroed;
    }
    EXPECT_EQ(zeroed, 16u);
  }
  {
    // Zeroing an already-zero buffer changes nothing and says so.
    fault::SitePlan plan;
    plan.every = 1;
    plan.corrupt = fault::CorruptKind::kStaleZero;
    in.install("k.zero2", plan);
    std::vector<unsigned char> buf(64, 0);
    EXPECT_FALSE(fault::MaybeCorrupt("k.zero2", buf.data(), buf.size()));
  }
  in.clear();
}

TEST(CorruptionInjector, SpecAndDescribeRoundTrip) {
  InjectorReset reset;
  auto& in = fault::Injector::Global();
  std::string err;
  ASSERT_TRUE(in.install_spec(
      "seed=11;shard.read.corrupt:every=3,corrupt=torn,span=32;"
      "pmpool.get.corrupt:nth=2+5,corrupt=bitflip",
      &err))
      << err;
  const std::string desc = in.describe();
  EXPECT_NE(desc.find("seed=11"), std::string::npos);
  EXPECT_NE(desc.find("corrupt=torn"), std::string::npos);
  EXPECT_NE(desc.find("span=32"), std::string::npos);
  EXPECT_NE(desc.find("corrupt=bitflip"), std::string::npos);

  in.clear();
  ASSERT_TRUE(in.install_spec(desc, &err)) << desc << ": " << err;
  EXPECT_EQ(in.describe(), desc);  // canonical fixed point
}

TEST(CorruptionInjector, CorruptionPlansNeverYieldErrno) {
  InjectorReset reset;
  auto& in = fault::Injector::Global();
  fault::SitePlan plan;
  plan.every = 1;
  plan.corrupt = fault::CorruptKind::kBitFlip;
  in.install("c.only", plan);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(in.fire("c.only"), 0);
  // And errno plans never yield corruptions.
  fault::SitePlan errs;
  errs.every = 1;
  in.install("e.only", errs);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(in.fire_corruption("e.only").has_value());
  }
  in.clear();
}

// --- Corrupted-shard decode (present-but-wrong bytes) ---------------------

class CorruptShardDecode : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::Global().clear();
    dir_ = fs::temp_directory_path() /
           ("dialga_corrupt_decode_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    payload_ = MakePayload(4000, 1);
    WriteFileBytes(dir_ / "input.bin", payload_);
  }
  void TearDown() override {
    fault::Injector::Global().clear();
    fs::remove_all(dir_);
  }

  // Flip a byte in the middle of a stored shard file.
  void CorruptShardFile(std::size_t idx) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard_%03zu", idx);
    const fs::path p = dir_ / name;
    std::string bytes = ReadFileBytes(p);
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
    WriteFileBytes(p, bytes);
  }

  fs::path dir_;
  std::string payload_;
};

TEST_F(CorruptShardDecode, CorruptedDataShardDecodesExactly) {
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, 256);
  ASSERT_TRUE(store.encode_file(dir_ / "input.bin", dir_).ok());
  CorruptShardFile(1);  // data shard
  ASSERT_TRUE(store.decode_file(dir_, dir_ / "out.bin").ok());
  EXPECT_EQ(ReadFileBytes(dir_ / "out.bin"), payload_);
}

TEST_F(CorruptShardDecode, CorruptedParityShardDecodesExactly) {
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, 256);
  ASSERT_TRUE(store.encode_file(dir_ / "input.bin", dir_).ok());
  CorruptShardFile(5);  // parity shard
  ASSERT_TRUE(store.decode_file(dir_, dir_ / "out.bin").ok());
  EXPECT_EQ(ReadFileBytes(dir_ / "out.bin"), payload_);
  // repair() reports it as corrupt (present, wrong bytes), not missing.
  CorruptShardFile(5);
  const auto report = store.repair(dir_);
  EXPECT_EQ(report.corrupt, std::vector<std::size_t>{5});
}

TEST_F(CorruptShardDecode, BeyondParityCorruptionIsExplicitDamage) {
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, 256);
  ASSERT_TRUE(store.encode_file(dir_ / "input.bin", dir_).ok());
  CorruptShardFile(0);
  CorruptShardFile(2);
  CorruptShardFile(4);  // three corrupt > m=2
  const auto st = store.decode_file(dir_, dir_ / "out.bin");
  EXPECT_EQ(st.kind, shard::Status::Kind::kDamaged);
}

TEST_F(CorruptShardDecode, WithoutVerifyOnReadCorruptionPassesThrough) {
  // The control experiment: disabling verify-on-read must surface the
  // rot — proving the defense (not the codec) is what catches it.
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, 256);
  ASSERT_TRUE(store.encode_file(dir_ / "input.bin", dir_).ok());
  CorruptShardFile(1);
  store.set_verify_on_read(false);
  ASSERT_TRUE(store.decode_file(dir_, dir_ / "out.bin").ok());
  EXPECT_NE(ReadFileBytes(dir_ / "out.bin"), payload_);
}

TEST_F(CorruptShardDecode, ReadRepairHealsTheGenerationInPlace) {
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, 256);
  ASSERT_TRUE(store.encode_file(dir_ / "input.bin", dir_).ok());
  CorruptShardFile(2);
  EXPECT_EQ(store.verify(dir_).size(), 1u);
  ASSERT_TRUE(store.decode_file(dir_, dir_ / "out.bin").ok());
  // decode_file rewrote the healed shard: the generation verifies clean.
  EXPECT_TRUE(store.verify(dir_).empty());
}

TEST_F(CorruptShardDecode, BitIdenticalAcrossAioBackends) {
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, 256);
  ASSERT_TRUE(store.encode_file(dir_ / "input.bin", dir_).ok());
  CorruptShardFile(3);

  shard::ShardStore stdio_store(codec, 256);
  stdio_store.set_aio_mode(aio::Mode::kStdio);
  stdio_store.set_read_repair(false);  // keep the corruption in place
  ASSERT_TRUE(stdio_store.decode_file(dir_, dir_ / "out_stdio.bin").ok());

  shard::ShardStore auto_store(codec, 256);
  auto_store.set_aio_mode(aio::Mode::kAuto);  // uring when available
  ASSERT_TRUE(auto_store.decode_file(dir_, dir_ / "out_auto.bin").ok());

  EXPECT_EQ(ReadFileBytes(dir_ / "out_stdio.bin"), payload_);
  EXPECT_EQ(ReadFileBytes(dir_ / "out_stdio.bin"),
            ReadFileBytes(dir_ / "out_auto.bin"));
}

// --- The seeded chaos matrix ----------------------------------------------

TEST(CorruptionChaosMatrix, ShardReadSiteNeverReturnsCorruptAsClean) {
  InjectorReset reset;
  for (const std::uint64_t seed : Seeds()) {
    for (const char* kind : {"bitflip", "torn", "zero"}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " kind=" + kind);
      const fs::path dir =
          fs::temp_directory_path() /
          ("dialga_chaos_shard_" + std::to_string(seed) + "_" + kind);
      fs::remove_all(dir);
      fs::create_directories(dir);
      const std::string payload = MakePayload(5000, seed);
      WriteFileBytes(dir / "input.bin", payload);

      const dialga::DialgaCodec codec(4, 2);
      shard::ShardStore store(codec, 256);
      fault::Injector::Global().clear();
      ASSERT_TRUE(store.encode_file(dir / "input.bin", dir).ok());

      // Corrupt up to m=2 of the 6 whole-shard reads per decode.
      std::string err;
      ASSERT_TRUE(fault::Injector::Global().install_spec(
          "seed=" + std::to_string(seed) +
              ";shard.read.corrupt:every=3,max=2,corrupt=" + kind,
          &err))
          << err;
      const auto st = store.decode_file(dir, dir / "out.bin");
      fault::Injector::Global().clear();
      // Within the parity budget the decode must succeed AND be exact —
      // wrong bytes with an ok status is the one forbidden outcome.
      ASSERT_TRUE(st.ok()) << st.message();
      EXPECT_EQ(ReadFileBytes(dir / "out.bin"), payload);

      // Convergence: the generation on disk still decodes clean with no
      // injection active (read-repair may have rewritten shards, but
      // only with verified bytes).
      ASSERT_TRUE(store.decode_file(dir, dir / "out2.bin").ok());
      EXPECT_EQ(ReadFileBytes(dir / "out2.bin"), payload);
      EXPECT_TRUE(store.verify(dir).empty());
      fs::remove_all(dir);
    }
  }
}

TEST(CorruptionChaosMatrix, PmpoolGetSiteHealsOrReportsDamage) {
  InjectorReset reset;
  for (const std::uint64_t seed : Seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fault::Injector::Global().clear();
    pmpool::PoolConfig cfg;
    cfg.k = 4;
    cfg.m = 2;
    cfg.block_size = 128;
    pmpool::Pool pool(cfg);
    std::string value = MakePayload(cfg.k * cfg.block_size * 3, seed);
    const auto id = pool.put(std::as_bytes(std::span(value)));
    ASSERT_NE(id, pmpool::Pool::kPutFailed);

    // In-place PM rot on blocks consumed by get(): at most m per
    // stripe-read (k consults per stripe, fire every 3rd, cap 2 per
    // plan install — reinstall per read to re-arm).
    for (int read = 0; read < 4; ++read) {
      std::string err;
      ASSERT_TRUE(fault::Injector::Global().install_spec(
          "seed=" + std::to_string(seed + read) +
              ";pmpool.get.corrupt:every=3,max=2,corrupt=torn,span=24",
          &err))
          << err;
      const auto got = pool.get(id);
      fault::Injector::Global().clear();
      // Verify-on-read heals in place: the value must come back exact.
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->size(), value.size());
      EXPECT_EQ(std::memcmp(got->data(), value.data(), value.size()), 0);
    }
    // Converged: a scrub finds nothing left to repair.
    const auto report = pool.scrub();
    EXPECT_EQ(report.blocks_damaged, report.blocks_repaired);
    EXPECT_EQ(pool.quarantined_stripes(), 0u);
  }
}

TEST(CorruptionChaosMatrix, PmpoolBeyondParityRotIsExplicitDamage) {
  InjectorReset reset;
  pmpool::PoolConfig cfg;
  cfg.k = 4;
  cfg.m = 2;
  cfg.block_size = 128;
  cfg.heal_retry_cap = 2;
  pmpool::Pool pool(cfg);
  std::string value = MakePayload(cfg.k * cfg.block_size, 5);
  const auto id = pool.put(std::as_bytes(std::span(value)));
  ASSERT_NE(id, pmpool::Pool::kPutFailed);

  // Rot every data block (4 > m=2): get() must report damage, never
  // fabricate bytes — and repeated failures quarantine the stripe.
  std::string err;
  ASSERT_TRUE(fault::Injector::Global().install_spec(
      "seed=5;pmpool.get.corrupt:every=1,corrupt=bitflip", &err))
      << err;
  for (int read = 0; read < 3; ++read) {
    EXPECT_FALSE(pool.get(id).has_value());
  }
  fault::Injector::Global().clear();
  EXPECT_EQ(pool.quarantined_stripes(), 1u);
  EXPECT_FALSE(pool.get(id).has_value());  // quarantined: damage, named
}

TEST(CorruptionChaosMatrix, ClusterRecvSiteNeverDeliversCorruptFrames) {
  InjectorReset reset;
  for (const std::uint64_t seed : Seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fault::Injector::Global().clear();
    cluster::LocalClusterConfig cfg;
    cfg.nodes = 6;
    cfg.geom = {.k = 4, .global = 2, .local = 0, .block_size = 256};
    cluster::LocalCluster c(cfg);

    const std::size_t stripe_bytes = 4 * 256;
    std::string data = MakePayload(stripe_bytes * 3, seed);
    for (std::uint64_t s = 0; s < 3; ++s) {
      std::vector<const std::byte*> ptrs;
      for (std::uint32_t j = 0; j < 4; ++j) {
        ptrs.push_back(reinterpret_cast<const std::byte*>(data.data()) +
                       s * stripe_bytes + j * 256);
      }
      ASSERT_TRUE(c.coordinator()
                      .write_stripe(s, std::span<const std::byte* const>(ptrs))
                      .ok());
    }

    // Corrupt serialized RPC bytes in flight. The wire CRC turns every
    // hit into a transport error; reads either fail explicitly or
    // return exact bytes — never silently-wrong payloads.
    std::string err;
    ASSERT_TRUE(fault::Injector::Global().install_spec(
        "seed=" + std::to_string(seed) +
            ";cluster.recv.corrupt:p=0.3,corrupt=bitflip",
        &err))
        << err;
    for (std::uint64_t s = 0; s < 3; ++s) {
      for (std::uint32_t j = 0; j < 4; ++j) {
        std::vector<std::byte> out;
        const auto r = c.coordinator().read_block(s, j, &out);
        if (r.ok()) {
          ASSERT_EQ(out.size(), 256u);
          EXPECT_EQ(std::memcmp(out.data(),
                                data.data() + s * stripe_bytes + j * 256,
                                256),
                    0);
        }
      }
    }
    fault::Injector::Global().clear();

    // Acked data never lost: with the noise gone every block reads
    // back exact.
    for (std::uint64_t s = 0; s < 3; ++s) {
      for (std::uint32_t j = 0; j < 4; ++j) {
        std::vector<std::byte> out;
        ASSERT_TRUE(c.coordinator().read_block(s, j, &out).ok());
        EXPECT_EQ(std::memcmp(out.data(),
                              data.data() + s * stripe_bytes + j * 256, 256),
                  0);
      }
    }
  }
}

TEST(CorruptionChaosMatrix, ClusterReadRepairConvergesCorruptChunks) {
  InjectorReset reset;
  cluster::LocalClusterConfig cfg;
  cfg.nodes = 6;
  cfg.geom = {.k = 4, .global = 2, .local = 0, .block_size = 256};
  cluster::LocalCluster c(cfg);
  const std::size_t stripe_bytes = 4 * 256;
  std::string data = MakePayload(stripe_bytes, 9);
  std::vector<const std::byte*> ptrs;
  for (std::uint32_t j = 0; j < 4; ++j) {
    ptrs.push_back(reinterpret_cast<const std::byte*>(data.data()) + j * 256);
  }
  ASSERT_TRUE(c.coordinator()
                  .write_stripe(0, std::span<const std::byte* const>(ptrs))
                  .ok());

  // Rot shard 1's chunk at its home; the node detects kCorrupt, the
  // read goes degraded, and read-repair reseats a verified chunk.
  const cluster::NodeId home = c.placement().table(0, cfg.geom)[1];
  ASSERT_TRUE(c.node(home - 1).corrupt_chunk(0, 1));
  std::vector<std::byte> out;
  const auto r = c.coordinator().read_block(0, 1, &out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code, cluster::OpResult::Code::kDegraded);
  EXPECT_EQ(std::memcmp(out.data(), data.data() + 256, 256), 0);

  // Healed in place: the next read is healthy (kOk, not degraded).
  std::vector<std::byte> again;
  const auto r2 = c.coordinator().read_block(0, 1, &again);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.code, cluster::OpResult::Code::kOk);
  EXPECT_EQ(std::memcmp(again.data(), data.data() + 256, 256), 0);
  EXPECT_EQ(c.coordinator().quarantined_stripes(), 0u);
}

TEST(CorruptionChaosMatrix, AioCqeSiteIsCaughtByShardVerify) {
  InjectorReset reset;
  for (const std::uint64_t seed : Seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const fs::path dir = fs::temp_directory_path() /
                         ("dialga_chaos_aio_" + std::to_string(seed));
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string payload = MakePayload(5000, seed);
    WriteFileBytes(dir / "input.bin", payload);

    const dialga::DialgaCodec codec(4, 2);
    shard::ShardStore store(codec, 256);
    fault::Injector::Global().clear();
    ASSERT_TRUE(store.encode_file(dir / "input.bin", dir).ok());

    // aio.cqe.corrupt mutates uring completion buffers; on stdio-only
    // hosts the site is simply never consulted and the decode is clean
    // — both outcomes satisfy the invariant (exact bytes or explicit
    // damage).
    std::string err;
    ASSERT_TRUE(fault::Injector::Global().install_spec(
        "seed=" + std::to_string(seed) +
            ";aio.cqe.corrupt:every=4,max=2,corrupt=torn,span=64",
        &err))
        << err;
    const auto st = store.decode_file(dir, dir / "out.bin");
    fault::Injector::Global().clear();
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(ReadFileBytes(dir / "out.bin"), payload);
    fs::remove_all(dir);
  }
}

}  // namespace
