#include "ec/plan_stats.h"

#include <gtest/gtest.h>

#include "ec/isal.h"
#include "ec/xor_codec.h"

namespace ec {
namespace {

const simmem::ComputeCost kCost{};

TEST(PlanStats, IsalEncodeCounts) {
  const IsalCodec codec(4, 2);
  const EncodePlan plan = codec.encode_plan(1024, kCost);
  const PlanStats st = AnalyzePlan(plan);
  EXPECT_EQ(st.loads, 4u * 16u);
  EXPECT_EQ(st.distinct_lines_loaded, 4u * 16u);
  EXPECT_EQ(st.repeat_loads, 0u);
  EXPECT_EQ(st.stores_nt, 2u * 16u);
  EXPECT_EQ(st.stores_cached, 0u);
  EXPECT_EQ(st.prefetches, 0u);
  EXPECT_EQ(st.fences, 1u);
  EXPECT_DOUBLE_EQ(st.compute_cycles, plan.total_compute_cycles());
  EXPECT_EQ(st.read_bytes(), 4u * 1024u);
  EXPECT_EQ(st.write_bytes(), 2u * 1024u);
  EXPECT_DOUBLE_EQ(st.repeat_load_fraction(), 0.0);
}

TEST(PlanStats, PrefetchLeadsMatchDistance) {
  const IsalCodec codec(4, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = 9;
  const EncodePlan plan = codec.encode_plan_with(1024, kCost, opts);
  const PlanStats st = AnalyzePlan(plan);
  EXPECT_EQ(st.prefetches, st.loads - 9);
  EXPECT_EQ(st.prefetch_lead_min, 9u);
  EXPECT_EQ(st.prefetch_lead_max, 9u);
  EXPECT_NEAR(st.prefetch_lead_avg, 9.0, 1e-9);
  EXPECT_EQ(st.orphan_prefetches, 0u);
}

TEST(PlanStats, SplitDistancesGiveTwoLeads) {
  const IsalCodec codec(4, 2);
  IsalPlanOptions opts;
  opts.prefetch_distance = 6;
  opts.xpline_first_distance = 10;
  const EncodePlan plan = codec.encode_plan_with(1024, kCost, opts);
  const PlanStats st = AnalyzePlan(plan);
  EXPECT_EQ(st.prefetch_lead_min, 6u);
  EXPECT_EQ(st.prefetch_lead_max, 10u);
  EXPECT_EQ(st.orphan_prefetches, 0u);
}

TEST(PlanStats, XorCodecShowsRepeatLoads) {
  const XorCodec codec(8, 4, gf::cauchy_generator(8, 4), "x");
  const EncodePlan plan = codec.encode_plan(1024, kCost);
  const PlanStats st = AnalyzePlan(plan);
  EXPECT_GT(st.repeat_load_fraction(), 0.3)
      << "XOR schedules re-read data sub-rows per parity row";
  EXPECT_GT(st.stores_cached, 0u) << "temporaries use cached stores";
}

TEST(PlanStats, FormatMentionsKeyNumbers) {
  const IsalCodec codec(4, 2);
  const EncodePlan plan = codec.encode_plan(1024, kCost);
  const std::string text = FormatPlanStats(plan, AnalyzePlan(plan));
  EXPECT_NE(text.find("4 data + 2 parity"), std::string::npos);
  EXPECT_NE(text.find("loads:"), std::string::npos);
  EXPECT_NE(text.find("4096 B read"), std::string::npos);
}

}  // namespace
}  // namespace ec
