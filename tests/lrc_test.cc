#include "ec/lrc.h"

#include <gtest/gtest.h>

#include <random>

#include "ec/isal.h"
#include "gf/gf_simd.h"

namespace ec {
namespace {

struct Blocks {
  std::vector<std::vector<std::byte>> storage;
  std::vector<const std::byte*> data_ptrs;
  std::vector<std::byte*> parity_ptrs;
  std::vector<std::byte*> all_ptrs;
};

Blocks MakeBlocks(std::size_t k, std::size_t parities, std::size_t bs,
                  std::uint64_t seed) {
  Blocks b;
  std::mt19937_64 rng(seed);
  b.storage.resize(k + parities, std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& byte : b.storage[i]) byte = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < k; ++i) b.data_ptrs.push_back(b.storage[i].data());
  for (std::size_t j = 0; j < parities; ++j)
    b.parity_ptrs.push_back(b.storage[k + j].data());
  for (auto& s : b.storage) b.all_ptrs.push_back(s.data());
  return b;
}

TEST(Lrc, GlobalParitiesMatchPlainRs) {
  const std::size_t k = 8, m = 2, l = 2, bs = 512;
  const LrcCodec lrc(k, m, l);
  const IsalCodec rs(k, m);
  Blocks a = MakeBlocks(k, m + l, bs, 3);
  Blocks b = MakeBlocks(k, m, bs, 3);
  lrc.encode(bs, a.data_ptrs, a.parity_ptrs);
  rs.encode(bs, b.data_ptrs, b.parity_ptrs);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(a.storage[k + j], b.storage[k + j]) << "global parity " << j;
  }
}

TEST(Lrc, LocalParityIsGroupXor) {
  const std::size_t k = 6, m = 2, l = 2, bs = 256;
  const LrcCodec lrc(k, m, l);
  Blocks b = MakeBlocks(k, m + l, bs, 4);
  lrc.encode(bs, b.data_ptrs, b.parity_ptrs);
  ASSERT_EQ(lrc.group_size(), 3u);
  for (std::size_t grp = 0; grp < l; ++grp) {
    for (std::size_t o = 0; o < bs; ++o) {
      std::byte expect{0};
      for (std::size_t j = grp * 3; j < (grp + 1) * 3; ++j)
        expect ^= b.storage[j][o];
      ASSERT_EQ(b.storage[k + m + grp][o], expect) << "group " << grp;
    }
  }
}

TEST(Lrc, LocallyRepairableClassification) {
  const LrcCodec lrc(8, 2, 2);
  EXPECT_TRUE(lrc.locally_repairable(std::vector<std::size_t>{1}));
  EXPECT_TRUE(lrc.locally_repairable(std::vector<std::size_t>{1, 6}));
  // Two erasures in the same group: needs global decode.
  EXPECT_FALSE(lrc.locally_repairable(std::vector<std::size_t>{1, 2}));
  // Parity erasures are never local repairs.
  EXPECT_FALSE(lrc.locally_repairable(std::vector<std::size_t>{8}));
  EXPECT_FALSE(lrc.locally_repairable(std::vector<std::size_t>{}));
}

TEST(Lrc, LocalRepairRecoversData) {
  const std::size_t k = 8, m = 2, l = 2, bs = 1024;
  const LrcCodec lrc(k, m, l);
  Blocks b = MakeBlocks(k, m + l, bs, 5);
  lrc.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  // One erasure per group: both repaired locally.
  const std::vector<std::size_t> erasures{2, 5};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(lrc.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Lrc, GlobalDecodeHandlesGroupDoubleFault) {
  const std::size_t k = 8, m = 2, l = 2, bs = 512;
  const LrcCodec lrc(k, m, l);
  Blocks b = MakeBlocks(k, m + l, bs, 6);
  lrc.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{0, 1};  // same group
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(lrc.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Lrc, RecoversErasedParities) {
  const std::size_t k = 6, m = 2, l = 2, bs = 256;
  const LrcCodec lrc(k, m, l);
  Blocks b = MakeBlocks(k, m + l, bs, 7);
  lrc.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{k, k + m};  // one global, one local
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(lrc.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Lrc, MixedDataAndLocalParityBeyondLocalRepair) {
  const std::size_t k = 8, m = 2, l = 2, bs = 256;
  const LrcCodec lrc(k, m, l);
  Blocks b = MakeBlocks(k, m + l, bs, 8);
  lrc.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  // Data block 0 plus its own group's local parity: must fall back to
  // the global path.
  const std::vector<std::size_t> erasures{0, k + m + 0};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(lrc.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Lrc, EncodePlanCoversAllParities) {
  const std::size_t k = 8, m = 2, l = 2, bs = 1024;
  const LrcCodec lrc(k, m, l);
  const simmem::ComputeCost cost{};
  const EncodePlan plan = lrc.encode_plan(bs, cost);
  EXPECT_EQ(plan.num_parity, m + l);
  EXPECT_EQ(plan.count(PlanOp::Kind::kStore), (m + l) * bs / 64);
  EXPECT_EQ(plan.count(PlanOp::Kind::kLoad), k * bs / 64);
}

TEST(Lrc, LocalRepairPlanReadsOnlyTheGroup) {
  const std::size_t k = 8, m = 2, l = 2, bs = 512;
  const LrcCodec lrc(k, m, l);
  const simmem::ComputeCost cost{};
  const std::vector<std::size_t> erasures{1};
  const EncodePlan plan = lrc.decode_plan(bs, cost, erasures);
  std::set<std::uint16_t> loads;
  for (const PlanOp& op : plan.ops)
    if (op.kind == PlanOp::Kind::kLoad) loads.insert(op.block);
  // Group of block 1 = blocks 0..3 plus local parity k+m.
  EXPECT_EQ(loads, std::set<std::uint16_t>({0, 2, 3, 10}));
  // Far fewer loads than a global decode.
  const EncodePlan global = lrc.decode_plan(bs, cost,
                                            std::vector<std::size_t>{0, 1});
  EXPECT_LT(plan.count(PlanOp::Kind::kLoad),
            global.count(PlanOp::Kind::kLoad));
}

TEST(Lrc, NameIncludesParameters) {
  const LrcCodec lrc(12, 2, 3);
  EXPECT_EQ(lrc.name(), "LRC(12,2,3)");
  EXPECT_EQ(lrc.params().m, 5u);
  EXPECT_EQ(lrc.global_parities(), 2u);
  EXPECT_EQ(lrc.local_parities(), 3u);
  EXPECT_EQ(lrc.group_of(0), 0u);
  EXPECT_EQ(lrc.group_of(11), 2u);
}

}  // namespace
}  // namespace ec
