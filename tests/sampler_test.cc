#include "simmem/sampler.h"

#include <gtest/gtest.h>

#include "simmem/address_space.h"

namespace simmem {
namespace {

TEST(Sampler, NoWindowBeforeInterval) {
  const SimConfig cfg;
  MemorySystem mem(cfg, 1);
  Sampler s(1000.0);
  mem.load(0, kPmBase);  // a few hundred ns
  EXPECT_FALSE(s.poll(mem));
  EXPECT_TRUE(s.windows().empty());
}

TEST(Sampler, WindowsCoverTheTimeline) {
  const SimConfig cfg;
  MemorySystem mem(cfg, 1);
  Sampler s(500.0);
  for (int i = 0; i < 20; ++i) {
    mem.load(0, kPmBase + i * kPageBytes);
    s.poll(mem);
  }
  s.flush(mem);
  ASSERT_GE(s.windows().size(), 2u);
  // Windows tile the timeline without gaps.
  double t = 0.0;
  std::uint64_t loads = 0;
  for (const auto& w : s.windows()) {
    EXPECT_DOUBLE_EQ(w.t_begin_ns, t);
    EXPECT_GT(w.t_end_ns, w.t_begin_ns);
    t = w.t_end_ns;
    loads += w.delta.loads;
  }
  EXPECT_DOUBLE_EQ(t, mem.max_clock());
  EXPECT_EQ(loads, mem.pmu().loads) << "window deltas must sum to totals";
}

TEST(Sampler, DetectsLatencyShift) {
  // Cheap DRAM phase then cold-PM phase: the latency series must jump.
  const SimConfig cfg;
  MemorySystem mem(cfg, 1);
  Sampler s(2000.0);
  for (int i = 0; i < 100; ++i) {
    mem.load(0, kDramBase + (i % 4) * 32);  // mostly L1 hits
    s.poll(mem);
  }
  s.flush(mem);
  const std::size_t cheap_windows = s.windows().size();
  for (int i = 0; i < 100; ++i) {
    mem.load(0, kPmBase + i * kPageBytes);  // all cold misses
    s.poll(mem);
  }
  s.flush(mem);
  const auto series = s.latency_series_ns();
  ASSERT_GT(series.size(), cheap_windows);
  EXPECT_GT(series.back(), series.front() * 5.0);
}

TEST(Sampler, FlushIsIdempotent) {
  const SimConfig cfg;
  MemorySystem mem(cfg, 1);
  Sampler s(1000.0);
  mem.load(0, kPmBase);
  s.flush(mem);
  const std::size_t n = s.windows().size();
  s.flush(mem);  // no time has passed
  EXPECT_EQ(s.windows().size(), n);
}

TEST(DcuPrefetcher, NextLinePrefetchOnMiss) {
  SimConfig cfg;
  cfg.prefetcher.dcu_next_line = true;
  MemorySystem mem(cfg, 1);
  mem.load(0, kPmBase);  // miss: DCU prefetches line 1
  EXPECT_GE(mem.pmu().hw_prefetches_issued, 1u);
  mem.compute_cycles(0, 2000.0);
  const double before = mem.clock(0);
  mem.load(0, kPmBase + kCacheLineBytes);
  EXPECT_NEAR(mem.clock(0) - before, cfg.l1.hit_latency_ns, 0.01)
      << "next line must be an L1 hit after the DCU prefetch";
}

TEST(DcuPrefetcher, StopsAtPageBoundary) {
  SimConfig cfg;
  cfg.prefetcher.dcu_next_line = true;
  MemorySystem mem(cfg, 1);
  mem.load(0, kPmBase + kPageBytes - kCacheLineBytes);  // last line of page
  EXPECT_EQ(mem.pmu().hw_prefetches_issued, 0u);
}

TEST(DcuPrefetcher, DisabledWithStreamerSwitch) {
  SimConfig cfg;
  cfg.prefetcher.dcu_next_line = true;
  MemorySystem mem(cfg, 1);
  mem.set_hw_prefetcher_enabled(false);
  mem.load(0, kPmBase);
  EXPECT_EQ(mem.pmu().hw_prefetches_issued, 0u);
}

TEST(DcuPrefetcher, GeneratesUselessPrefetchesOnScatteredAccess) {
  // Random single-line accesses: every DCU next-line fetch is wasted —
  // the mechanism the paper's 0xf2 counts capture for small blocks.
  SimConfig cfg;
  cfg.prefetcher.dcu_next_line = true;
  cfg.l2 = {16 * 1024, 2, 4.0};  // small L2 so victims churn out
  MemorySystem mem(cfg, 1);
  for (int i = 0; i < 4096; ++i) {
    mem.load(0, kPmBase + static_cast<std::uint64_t>(i) * 2 * kPageBytes);
  }
  EXPECT_GT(mem.pmu().hw_prefetches_useless, 100u);
}

}  // namespace
}  // namespace simmem
