#include "simmem/dram_device.h"

#include <gtest/gtest.h>

namespace simmem {
namespace {

DramConfig TestCfg() {
  DramConfig cfg;
  cfg.channels = 2;
  cfg.load_latency_ns = 80.0;
  cfg.read_gbps_per_channel = 1.0;  // 64 B -> 64 ns service
  cfg.interleave_bytes = 4096;
  return cfg;
}

TEST(BandwidthServer, ServesInOrderWithQueueing) {
  BandwidthServer bw(1.0);  // 1 byte per ns
  EXPECT_DOUBLE_EQ(bw.start_transfer(0.0, 64), 0.0);
  EXPECT_DOUBLE_EQ(bw.next_free(), 64.0);
  // Second request at t=10 queues behind the first.
  EXPECT_DOUBLE_EQ(bw.start_transfer(10.0, 64), 64.0);
  // A late request after the queue drained starts immediately.
  EXPECT_DOUBLE_EQ(bw.start_transfer(1000.0, 64), 1000.0);
  bw.reset();
  EXPECT_DOUBLE_EQ(bw.start_transfer(0.0, 64), 0.0);
}

TEST(DramDevice, ReadLatencyAndTraffic) {
  PmuCounters pmu;
  DramDevice dev(TestCfg(), &pmu);
  EXPECT_DOUBLE_EQ(dev.read(0, 0.0), 80.0);
  EXPECT_EQ(pmu.dram_read_bytes, kCacheLineBytes);
}

TEST(DramDevice, BackToBackReadsQueuePerChannel) {
  PmuCounters pmu;
  DramDevice dev(TestCfg(), &pmu);
  EXPECT_DOUBLE_EQ(dev.read(0, 0.0), 80.0);
  EXPECT_DOUBLE_EQ(dev.read(64, 0.0), 64.0 + 80.0);  // queued 64 ns
  // Other channel is independent.
  EXPECT_DOUBLE_EQ(dev.read(4096, 0.0), 80.0);
}

TEST(DramDevice, WritesUseSeparatePath) {
  PmuCounters pmu;
  DramDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);
  // The read queue does not delay writes.
  EXPECT_DOUBLE_EQ(dev.write(64, 0.0), 0.0);
}

TEST(DramDevice, ResetClearsQueues) {
  PmuCounters pmu;
  DramDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);
  dev.reset();
  EXPECT_DOUBLE_EQ(dev.read(64, 0.0), 80.0);
}

}  // namespace
}  // namespace simmem
