#include "dialga/registry.h"

#include <gtest/gtest.h>

namespace dialga {
namespace {

TEST(Registry, BuildsEveryKnownCodec) {
  for (const std::string& name : KnownCodecs()) {
    CodecSpec spec;
    spec.name = name;
    spec.k = 8;
    spec.m = 3;
    const auto codec = MakeCodec(spec);
    ASSERT_NE(codec, nullptr) << name;
    EXPECT_EQ(codec->params().k, 8u) << name;
  }
}

TEST(Registry, AcceptsAliases) {
  for (const std::string& alias :
       {"isal", "ISA-L", "isa_l", "Isal", "dialga", "DIALGA"}) {
    CodecSpec spec;
    spec.name = alias;
    spec.k = 4;
    spec.m = 2;
    EXPECT_NE(MakeCodec(spec), nullptr) << alias;
  }
}

TEST(Registry, UnknownNameIsNull) {
  CodecSpec spec;
  spec.name = "jerasure";
  EXPECT_EQ(MakeCodec(spec), nullptr);
}

TEST(Registry, ZerasureWideStripeIsNull) {
  CodecSpec spec;
  spec.name = "Zerasure";
  spec.k = 48;
  spec.m = 4;
  EXPECT_EQ(MakeCodec(spec), nullptr);
}

TEST(Registry, SimdAndLrcParamsApply) {
  CodecSpec spec;
  spec.name = "LRC";
  spec.k = 12;
  spec.m = 2;
  spec.l = 3;
  spec.simd = ec::SimdWidth::kAvx256;
  const auto codec = MakeCodec(spec);
  ASSERT_NE(codec, nullptr);
  EXPECT_EQ(codec->params().m, 5u);  // m global + l local
  EXPECT_EQ(codec->simd(), ec::SimdWidth::kAvx256);
}

}  // namespace
}  // namespace dialga
