#include "dialga/coordinator.h"

#include <gtest/gtest.h>

#include <set>

#include "dialga/policy.h"
#include "simmem/address_space.h"

namespace dialga {
namespace {

constexpr std::size_t kBuffer = 96 * 1024;

TEST(MaxDistanceForBuffer, Equation1) {
  // Paper's example: 6-channel 96 KB buffer, RS(28,24)-ish encode with
  // NT stores (m = 0): thrashing beyond 12 threads.
  // 12 threads x 28 blocks x 256 B = 86016 <= 98304: one wrap allowed.
  EXPECT_GE(MaxDistanceForBuffer(12, 28, 0, kBuffer), 28u);
  // 18 threads: 129024 > 98304: only the floor distance remains.
  EXPECT_EQ(MaxDistanceForBuffer(18, 28, 0, kBuffer), 8u);
  // Tiny workloads allow enormous distances.
  EXPECT_GT(MaxDistanceForBuffer(1, 4, 2, kBuffer), 100u);
}

TEST(Strategy, PlanOptionsRealization) {
  Strategy s;
  s.hw_prefetch = false;
  s.sw_distance = 24;
  s.xpline_first_distance = 28;
  s.widen_to_xpline = true;
  const ec::IsalPlanOptions o = s.to_plan_options();
  EXPECT_TRUE(o.shuffle_rows);
  EXPECT_EQ(o.prefetch_distance, 24u);
  EXPECT_EQ(o.xpline_first_distance, 28u);
  EXPECT_TRUE(o.widen_to_xpline);
}

TEST(Strategy, KeyDistinguishesStrategies) {
  Strategy a;
  a.sw_distance = 10;
  Strategy b = a;
  b.sw_distance = 11;
  Strategy c = a;
  c.hw_prefetch = false;
  Strategy d = a;
  d.widen_to_xpline = true;
  Strategy e = a;
  e.xpline_first_distance = 14;
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_NE(a.key(), d.key());
  EXPECT_NE(a.key(), e.key());
  EXPECT_EQ(a.key(), Strategy{a}.key());
}

TEST(Coordinator, InitialStrategyNarrowStripeLowThreads) {
  const PatternInfo p{12, 4, 1024, 1};
  const Coordinator c(p, Features::all(), Thresholds{}, kBuffer);
  const Strategy& s = c.initial_strategy();
  EXPECT_TRUE(s.hw_prefetch) << "low pressure keeps the streamer on";
  EXPECT_EQ(s.sw_distance, 12u) << "search starts at d = k";
  EXPECT_EQ(s.xpline_first_distance, 16u) << "BF low pressure: k + 4";
  EXPECT_FALSE(s.widen_to_xpline);
}

TEST(Coordinator, HighConcurrencyDisablesHwAndWidens) {
  const PatternInfo p{28, 24, 1024, 18};
  const Coordinator c(p, Features::all(), Thresholds{}, kBuffer);
  const Strategy& s = c.initial_strategy();
  EXPECT_FALSE(s.hw_prefetch) << "threads > 12 must defeat the streamer";
  EXPECT_TRUE(s.widen_to_xpline);
  EXPECT_LE(s.sw_distance, MaxDistanceForBuffer(18, 28, 24, kBuffer));
  EXPECT_EQ(s.xpline_first_distance, 0u) << "split distances are low-"
                                            "pressure only";
}

TEST(Coordinator, WideStripesLeaveStreamerAlone) {
  const PatternInfo p{48, 4, 1024, 1};
  const Coordinator c(p, Features::all(), Thresholds{}, kBuffer);
  EXPECT_TRUE(c.initial_strategy().hw_prefetch)
      << "k > 32: the streamer self-disables; don't pay for shuffle";
}

TEST(Coordinator, Aligned4KbBlocksRelyOnStreamerAlone) {
  // Fig. 12: the streamer is at peak efficiency on 4 KiB-aligned
  // blocks; software prefetching is withheld under low pressure.
  const PatternInfo p{12, 4, 4096, 1};
  const Coordinator c(p, Features::all(), Thresholds{}, kBuffer);
  EXPECT_TRUE(c.initial_strategy().hw_prefetch);
  EXPECT_EQ(c.initial_strategy().sw_distance, 0u);

  // 5 KiB is not 4 KiB-aligned: software prefetching stays on.
  const Coordinator c5(PatternInfo{12, 4, 5120, 1}, Features::all(),
                       Thresholds{}, kBuffer);
  EXPECT_GT(c5.initial_strategy().sw_distance, 0u);

  // Wide stripes at 4 KiB: the streamer is dead, software prefetch is
  // essential.
  const Coordinator cw(PatternInfo{48, 4, 4096, 1}, Features::all(),
                       Thresholds{}, kBuffer);
  EXPECT_GT(cw.initial_strategy().sw_distance, 0u);

  // High concurrency at 4 KiB: buffer-friendly mode re-engages.
  const Coordinator ch(PatternInfo{28, 24, 4096, 18}, Features::all(),
                       Thresholds{}, kBuffer);
  EXPECT_GT(ch.initial_strategy().sw_distance, 0u);
  EXPECT_TRUE(ch.initial_strategy().widen_to_xpline);
}

TEST(Coordinator, FeatureGates) {
  const PatternInfo p{12, 4, 1024, 1};
  {
    const Coordinator c(p, Features::vanilla(), Thresholds{}, kBuffer);
    const Strategy& s = c.initial_strategy();
    EXPECT_FALSE(s.hw_prefetch);
    EXPECT_EQ(s.sw_distance, 0u);
    EXPECT_FALSE(s.widen_to_xpline);
    EXPECT_EQ(s.xpline_first_distance, 0u);
  }
  {
    const Coordinator c(p, Features::sw_only(), Thresholds{}, kBuffer);
    const Strategy& s = c.initial_strategy();
    EXPECT_FALSE(s.hw_prefetch);
    EXPECT_GT(s.sw_distance, 0u);
    EXPECT_EQ(s.xpline_first_distance, 0u);
  }
  {
    const Coordinator c(p, Features::sw_hw(), Thresholds{}, kBuffer);
    const Strategy& s = c.initial_strategy();
    EXPECT_TRUE(s.hw_prefetch);
    EXPECT_GT(s.sw_distance, 0u);
    EXPECT_EQ(s.xpline_first_distance, 0u);
  }
}

TEST(Coordinator, SamplesAtConfiguredInterval) {
  const PatternInfo p{12, 4, 1024, 1};
  Thresholds thr;
  thr.sample_interval_ns = 1000.0;
  Coordinator c(p, Features::all(), thr, kBuffer);

  simmem::SimConfig cfg;
  simmem::MemorySystem mem(cfg, 1);
  c.strategy(mem);  // clock 0: no sample yet
  EXPECT_EQ(c.samples_taken(), 0u);
  mem.advance_to(0, 1500.0);
  c.strategy(mem);
  EXPECT_EQ(c.samples_taken(), 1u);
  c.strategy(mem);  // same window: no double sampling
  EXPECT_EQ(c.samples_taken(), 1u);
  mem.advance_to(0, 3000.0);
  c.strategy(mem);
  EXPECT_EQ(c.samples_taken(), 2u);
}

TEST(Coordinator, DetectsContentionFromLatencyRegression) {
  const PatternInfo p{12, 4, 1024, 8};
  Thresholds thr;
  thr.sample_interval_ns = 100.0;
  Coordinator c(p, Features::all(), thr, kBuffer);

  simmem::SimConfig cfg;
  simmem::MemorySystem mem(cfg, 1);

  // Window 1: cheap loads (all L1 hits after the first) -> baseline.
  mem.load(0, simmem::kDramBase);
  for (int i = 0; i < 100; ++i) mem.load(0, simmem::kDramBase + 32);
  mem.advance_to(0, 200.0);
  c.strategy(mem);
  ASSERT_EQ(c.samples_taken(), 1u);
  EXPECT_FALSE(c.contention());

  // Window 2: every load is a cold PM miss -> >110 % of baseline.
  for (int i = 0; i < 100; ++i) {
    mem.load(0, simmem::kPmBase + i * simmem::kPageBytes);
  }
  c.strategy(mem);
  ASSERT_EQ(c.samples_taken(), 2u);
  EXPECT_TRUE(c.contention());
}

// Regression for the stale low-pressure baseline: one anomalously
// quiet calibration window used to pin the lifetime-minimum baseline
// forever, reporting contention for the rest of the run even when the
// workload settled into a steady (higher-latency but uncontended)
// state. The sliding-window baseline forgets the outlier once it ages
// out of the ring.
TEST(Coordinator, BaselineRecoversAfterAnomalouslyQuietWindow) {
  const PatternInfo p{12, 4, 1024, 8};
  Thresholds thr;
  thr.sample_interval_ns = 100.0;
  thr.baseline_window = 4;
  Coordinator c(p, Features::all(), thr, kBuffer);

  simmem::SimConfig cfg;
  simmem::MemorySystem mem(cfg, 1);

  // Window 1: unrepresentatively cheap (all L1 hits after the first)
  // — the anomalous calibration window.
  mem.load(0, simmem::kDramBase);
  for (int i = 0; i < 100; ++i) mem.load(0, simmem::kDramBase + 32);
  mem.advance_to(0, 200.0);
  c.strategy(mem);
  ASSERT_EQ(c.samples_taken(), 1u);

  // Every later window is the workload's steady state: cold PM misses,
  // far above the quiet window but stable from window to window.
  auto steady_window = [&](int w) {
    for (int i = 0; i < 100; ++i) {
      mem.load(0, simmem::kPmBase +
                      static_cast<std::size_t>(w * 100 + i) *
                          simmem::kPageBytes);
    }
    mem.advance_to(0, 200.0 + w * 150.0);
    c.strategy(mem);
  };

  steady_window(1);
  ASSERT_EQ(c.samples_taken(), 2u);
  EXPECT_TRUE(c.contention())
      << "right after the quiet window, steady-state latency reads as "
         "contention — expected";
  const double stale_baseline = c.baseline_latency_ns();

  // Run enough steady windows for the quiet observation to age out of
  // the 4-sample ring; the baseline then reflects the steady state and
  // the contention bit clears.
  for (int w = 2; w <= 6; ++w) steady_window(w);
  EXPECT_GT(c.baseline_latency_ns(), stale_baseline)
      << "baseline must forget the quiet window once it leaves the ring";
  EXPECT_FALSE(c.contention())
      << "steady uncontended traffic must stop reading as contention "
         "once the anomalous baseline ages out";
}

// The legacy lifetime-minimum behavior stays available behind
// baseline_window = 0 — and pins the stale baseline forever, which is
// exactly the bug the sliding window fixes.
TEST(Coordinator, LegacyLifetimeBaselineStaysPinned) {
  const PatternInfo p{12, 4, 1024, 8};
  Thresholds thr;
  thr.sample_interval_ns = 100.0;
  thr.baseline_window = 0;  // legacy: lifetime minimum
  Coordinator c(p, Features::all(), thr, kBuffer);

  simmem::SimConfig cfg;
  simmem::MemorySystem mem(cfg, 1);

  mem.load(0, simmem::kDramBase);
  for (int i = 0; i < 100; ++i) mem.load(0, simmem::kDramBase + 32);
  mem.advance_to(0, 200.0);
  c.strategy(mem);
  const double quiet_baseline = c.baseline_latency_ns();

  for (int w = 1; w <= 10; ++w) {
    for (int i = 0; i < 100; ++i) {
      mem.load(0, simmem::kPmBase +
                      static_cast<std::size_t>(w * 100 + i) *
                          simmem::kPageBytes);
    }
    mem.advance_to(0, 200.0 + w * 150.0);
    c.strategy(mem);
  }
  EXPECT_DOUBLE_EQ(c.baseline_latency_ns(), quiet_baseline)
      << "lifetime minimum never forgets";
  EXPECT_TRUE(c.contention())
      << "with the pinned baseline the contention bit never clears";
}

TEST(Coordinator, AdaptiveDistanceFollowsClimber) {
  const PatternInfo p{12, 4, 1024, 1};
  Thresholds thr;
  thr.sample_interval_ns = 100.0;
  Coordinator c(p, Features::all(), thr, kBuffer);

  simmem::SimConfig cfg;
  simmem::MemorySystem mem(cfg, 1);
  std::set<std::size_t> distances;
  for (int w = 0; w < 40; ++w) {
    mem.load(0, simmem::kPmBase + w * simmem::kPageBytes);
    mem.advance_to(0, (w + 1) * 150.0);
    distances.insert(c.strategy(mem).sw_distance);
  }
  EXPECT_GT(distances.size(), 1u)
      << "hill climbing must explore multiple distances";
}

}  // namespace
}  // namespace dialga
