// Adaptive decode: DIALGA's coordinator machinery applied to the decode
// path ("Other Coding Tasks", section 4.1 — encoding and decoding share
// the same k-stream load pattern).
#include <gtest/gtest.h>

#include "bench_util/runner.h"
#include "dialga/dialga.h"
#include "ec/isal.h"

namespace dialga {
namespace {

bench_util::WorkloadConfig Wl(std::size_t k, std::size_t m,
                              std::size_t threads = 1) {
  bench_util::WorkloadConfig wl;
  wl.k = k;
  wl.m = m;
  wl.block_size = 1024;
  wl.threads = threads;
  wl.total_data_bytes = 8 << 20;
  return wl;
}

TEST(DecodeProvider, PlansLoadSurvivorsOnly) {
  const DialgaCodec codec(10, 4);
  simmem::SimConfig cfg;
  auto provider = codec.make_decode_provider({10, 4, 1024, 1}, cfg,
                                             {0, 5});
  simmem::MemorySystem mem(cfg, 1);
  const ec::EncodePlan& plan = provider->next_plan(0, mem);
  for (const ec::PlanOp& op : plan.ops) {
    if (op.kind == ec::PlanOp::Kind::kLoad) {
      EXPECT_NE(op.block, 0u);
      EXPECT_NE(op.block, 5u);
    }
    if (op.kind == ec::PlanOp::Kind::kStore) {
      EXPECT_TRUE(op.block == 0 || op.block == 5);
    }
  }
  EXPECT_GT(plan.count(ec::PlanOp::Kind::kPrefetch), 0u)
      << "decode plans carry the same pipelined prefetching";
}

TEST(DecodeProvider, AdaptsAndBeatsIsalDecode) {
  simmem::SimConfig cfg;
  const std::vector<std::size_t> erasures{0, 1};
  const ec::IsalCodec isal(12, 4);
  const auto base = bench_util::RunDecode(cfg, Wl(12, 4), isal, erasures);

  const DialgaCodec codec(12, 4);
  auto provider =
      codec.make_decode_provider({12, 4, 1024, 1}, cfg, erasures);
  const auto ours = bench_util::RunTimed(cfg, Wl(12, 4), *provider);

  EXPECT_GT(ours.gbps, 1.3 * base.gbps);
  EXPECT_GT(provider->coordinator().samples_taken(), 2u);
}

TEST(DecodeProvider, HighConcurrencyDefeatsStreamer) {
  simmem::SimConfig cfg;
  const DialgaCodec codec(28, 24);
  auto provider = codec.make_decode_provider({28, 24, 1024, 16}, cfg,
                                             {3});
  EXPECT_FALSE(provider->coordinator().initial_strategy().hw_prefetch);
  EXPECT_TRUE(provider->coordinator().initial_strategy().widen_to_xpline);

  const auto r = bench_util::RunTimed(cfg, Wl(28, 24, 16), *provider);
  EXPECT_LT(r.media_amplification(), 1.2)
      << "buffer-friendly decode must avoid read amplification";
}

TEST(DecodeProvider, CachesPlansAcrossStrategies) {
  simmem::SimConfig cfg;
  const DialgaCodec codec(12, 4);
  auto provider = codec.make_decode_provider({12, 4, 1024, 1}, cfg, {2});
  bench_util::RunTimed(cfg, Wl(12, 4), *provider);
  EXPECT_GE(provider->plans_built(), 2u)
      << "the hill climber must have materialized several distances";
}

}  // namespace
}  // namespace dialga
