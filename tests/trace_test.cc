#include "simmem/trace.h"

#include <gtest/gtest.h>

#include "simmem/address_space.h"

namespace simmem {
namespace {

TEST(Trace, RecordsInOrder) {
  Trace t;
  t.load(0, 0x100);
  t.compute(0, 33.0);
  t.sw_prefetch(1, 0x200);
  t.store_nt(0, 0x300);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.records()[0].op, TraceOp::kLoad);
  EXPECT_EQ(t.records()[1].op, TraceOp::kCompute);
  EXPECT_DOUBLE_EQ(t.records()[1].cycles, 33.0);
  EXPECT_EQ(t.records()[2].tid, 1u);
  EXPECT_EQ(t.records()[3].addr, 0x300u);
}

TEST(Trace, ReplayMatchesDirectExecution) {
  const SimConfig cfg;
  // Direct execution.
  MemorySystem direct(cfg, 2);
  direct.load(0, kPmBase);
  direct.load(0, kPmBase + 64);
  direct.compute_cycles(0, 100.0);
  direct.sw_prefetch(1, kPmBase + 4096);
  direct.load(1, kPmBase + 4096);
  direct.store_nt(0, kPmBase + 8192);

  // Same operations through a trace.
  Trace t;
  t.load(0, kPmBase);
  t.load(0, kPmBase + 64);
  t.compute(0, 100.0);
  t.sw_prefetch(1, kPmBase + 4096);
  t.load(1, kPmBase + 4096);
  t.store_nt(0, kPmBase + 8192);
  MemorySystem replayed(cfg, 2);
  t.replay(&replayed);

  EXPECT_DOUBLE_EQ(direct.clock(0), replayed.clock(0));
  EXPECT_DOUBLE_EQ(direct.clock(1), replayed.clock(1));
  EXPECT_EQ(direct.pmu().loads, replayed.pmu().loads);
  EXPECT_EQ(direct.pmu().pm_media_read_bytes,
            replayed.pmu().pm_media_read_bytes);
  EXPECT_DOUBLE_EQ(direct.pmu().load_stall_ns, replayed.pmu().load_stall_ns);
}

TEST(Trace, ToStringFormat) {
  Trace t;
  t.load(0, 0x40);
  t.store_nt(1, 0x80);
  t.sw_prefetch(0, 0xc0);
  t.compute(2, 5.5);
  const std::string s = t.to_string();
  EXPECT_EQ(s,
            "L t0 0x40\n"
            "S t1 0x80\n"
            "P t0 0xc0\n"
            "C t2 5.5\n");
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.load(0, 0x40);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.to_string().empty());
}

}  // namespace
}  // namespace simmem
