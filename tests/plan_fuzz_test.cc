// Randomized plan-option fuzzing: every combination of scheduling
// options must preserve the structural invariants (full coverage,
// bounded slots, at-most-once prefetch per line, trailing fence) —
// these are the properties that make a strategy switch safe at any
// sampling boundary.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "ec/isal.h"
#include "ec/plan_stats.h"

namespace ec {
namespace {

const simmem::ComputeCost kCost{};

TEST(PlanFuzz, RandomOptionCombosKeepInvariants) {
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng() % 48;
    const std::size_t m = 1 + rng() % 8;
    const std::size_t bs = (1 + rng() % 80) * 64;  // 64 B .. 5 KiB
    const std::size_t rows = bs / 64;

    IsalPlanOptions opts;
    opts.shuffle_rows = rng() % 2;
    opts.widen_to_xpline = rng() % 2;
    opts.prefetch_distance = rng() % (2 * k * rows + 8);
    if (rng() % 2) {
      opts.xpline_first_distance = rng() % (2 * k * rows + 8);
    }
    if (rng() % 3 == 0) {
      opts.prefetch_tail_offset = (rng() % (rows + 1)) * 64;
    }
    if (rng() % 4 == 0) opts.naive_prefetch_penalty_cycles = 14.0;

    const IsalCodec codec(k, m);
    const EncodePlan plan = codec.encode_plan_with(bs, kCost, opts);
    SCOPED_TRACE("trial " + std::to_string(trial) + " k=" +
                 std::to_string(k) + " m=" + std::to_string(m) +
                 " bs=" + std::to_string(bs) + " d=" +
                 std::to_string(opts.prefetch_distance));

    // Coverage: every data line loaded exactly once; every parity line
    // stored exactly once; offsets in range; plan ends with a fence.
    std::map<std::pair<std::uint16_t, std::uint32_t>, int> loads, stores,
        prefetches;
    for (const PlanOp& op : plan.ops) {
      if (op.kind == PlanOp::Kind::kCompute ||
          op.kind == PlanOp::Kind::kFence) {
        continue;
      }
      ASSERT_LT(op.block, k + m);
      ASSERT_LT(op.offset, bs);
      ASSERT_EQ(op.offset % 64, 0u);
      if (op.kind == PlanOp::Kind::kLoad) ++loads[{op.block, op.offset}];
      if (op.kind == PlanOp::Kind::kStore) ++stores[{op.block, op.offset}];
      if (op.kind == PlanOp::Kind::kPrefetch)
        ++prefetches[{op.block, op.offset}];
    }
    ASSERT_EQ(loads.size(), k * rows);
    for (const auto& [key, n] : loads) ASSERT_EQ(n, 1);
    ASSERT_EQ(stores.size(), m * rows);
    for (const auto& [key, n] : stores) ASSERT_EQ(n, 1);
    for (const auto& [key, n] : prefetches) {
      ASSERT_LE(n, 1) << "line must not be prefetched twice";
      ASSERT_LT(key.first, k) << "only data lines are prefetched";
      if (opts.prefetch_tail_offset > 0) {
        ASSERT_GE(key.second, opts.prefetch_tail_offset);
      }
    }
    ASSERT_EQ(plan.ops.back().kind, PlanOp::Kind::kFence);

    // The analyzer must agree and report no orphaned prefetches.
    const PlanStats st = AnalyzePlan(plan);
    ASSERT_EQ(st.orphan_prefetches, 0u);
    ASSERT_EQ(st.loads, k * rows);
  }
}

TEST(PlanFuzz, DecodePlansKeepInvariants) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 2 + rng() % 30;
    const std::size_t m = 1 + rng() % 6;
    const std::size_t bs = (4 + rng() % 28) * 64;
    const std::size_t rows = bs / 64;

    // Random erasure set of size 1..m.
    std::vector<std::size_t> idx(k + m);
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), rng);
    const std::size_t count = 1 + rng() % m;
    std::vector<std::size_t> erasures(idx.begin(), idx.begin() + count);

    const IsalCodec codec(k, m);
    const EncodePlan plan = codec.decode_plan(bs, kCost, erasures);
    SCOPED_TRACE("trial " + std::to_string(trial));

    const std::set<std::size_t> erased(erasures.begin(), erasures.end());
    std::set<std::uint16_t> loaded, stored;
    for (const PlanOp& op : plan.ops) {
      if (op.kind == PlanOp::Kind::kLoad) {
        ASSERT_EQ(erased.count(op.block), 0u)
            << "decode must not read an erased block";
        loaded.insert(op.block);
      }
      if (op.kind == PlanOp::Kind::kStore) stored.insert(op.block);
    }
    ASSERT_EQ(loaded.size(), k) << "decode reads exactly k survivors";
    ASSERT_EQ(stored.size(), erasures.size());
    ASSERT_EQ(plan.count(PlanOp::Kind::kLoad), k * rows);
  }
}

}  // namespace
}  // namespace ec
