#include "shard/shard_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <random>

#include "aio/ring.h"
#include "dialga/dialga.h"
#include "ec/isal.h"
#include "fault/injector.h"

namespace shard {
namespace {

namespace fs = std::filesystem;

class ShardStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dialga_shard_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_input(std::size_t bytes, std::uint64_t seed) {
    const fs::path p = dir_ / "input.bin";
    std::mt19937_64 rng(seed);
    std::ofstream out(p, std::ios::binary);
    for (std::size_t i = 0; i < bytes; ++i) {
      const char c = static_cast<char>(rng());
      out.write(&c, 1);
    }
    return p;
  }

  std::vector<char> slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary | std::ios::ate);
    std::vector<char> v(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(v.data(), static_cast<std::streamsize>(v.size()));
    return v;
  }

  void corrupt_shard(std::size_t index, std::size_t offset) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard_%03zu", index);
    std::fstream f(dir_ / "shards" / name,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    const char garbage = 0x55;
    f.write(&garbage, 1);
  }

  fs::path dir_;
};

TEST_F(ShardStoreTest, ManifestRoundTrips) {
  Manifest mf;
  mf.k = 8;
  mf.m = 3;
  mf.block_size = 4096;
  mf.file_size = 123456;
  mf.shard_checksums.assign(11, 42);
  mf.shard_checksums[5] = 7;
  const auto parsed = Manifest::parse(mf.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->k, 8u);
  EXPECT_EQ(parsed->m, 3u);
  EXPECT_EQ(parsed->block_size, 4096u);
  EXPECT_EQ(parsed->file_size, 123456u);
  EXPECT_EQ(parsed->shard_checksums, mf.shard_checksums);
  EXPECT_EQ(parsed->stripes(), (123456 + 8 * 4096 - 1) / (8 * 4096));
}

TEST_F(ShardStoreTest, ManifestRejectsGarbage) {
  EXPECT_FALSE(Manifest::parse("").has_value());
  EXPECT_FALSE(Manifest::parse("not-a-manifest\n").has_value());
  EXPECT_FALSE(Manifest::parse("dialga-shard-v1\nk 0\nm 2\nblock 64\nsize 1\n")
                   .has_value());
  EXPECT_FALSE(
      Manifest::parse("dialga-shard-v1\nk 2\nm 1\nblock 64\nsize 1\n")
          .has_value())
      << "missing checksums";
}

TEST_F(ShardStoreTest, EmptyFileRoundTripsThroughOnePaddingStripe) {
  // A zero-byte input still encodes one all-padding stripe, so the
  // manifest's shard_bytes() must agree with the 1-stripe shard files
  // on disk — readers sizing buffers from stripes()==0 would reject
  // every shard of an empty generation as a size mismatch.
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 1024);
  const fs::path input = write_input(0, 1);
  ASSERT_TRUE(store.encode_file(input, dir_ / "shards"));
  EXPECT_TRUE(store.verify(dir_ / "shards").empty());
  ASSERT_TRUE(store.decode_file(dir_ / "shards", dir_ / "out.bin"));
  EXPECT_EQ(fs::file_size(dir_ / "out.bin"), 0u);
}

TEST_F(ShardStoreTest, EncodeVerifyDecodeCleanPath) {
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 1024);
  const fs::path input = write_input(10000, 1);  // not stripe-aligned
  ASSERT_TRUE(store.encode_file(input, dir_ / "shards"));

  EXPECT_TRUE(store.verify(dir_ / "shards").empty());
  ASSERT_TRUE(store.decode_file(dir_ / "shards", dir_ / "out.bin"));
  EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));
}

TEST_F(ShardStoreTest, DetectsCorruptShards) {
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 1024);
  ASSERT_TRUE(store.encode_file(write_input(8192, 2), dir_ / "shards"));
  corrupt_shard(1, 17);
  corrupt_shard(5, 0);
  const auto damaged = store.verify(dir_ / "shards");
  EXPECT_EQ(damaged, (std::vector<std::size_t>{1, 5}));
}

TEST_F(ShardStoreTest, DetectsMissingShards) {
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 1024);
  ASSERT_TRUE(store.encode_file(write_input(8192, 3), dir_ / "shards"));
  fs::remove(dir_ / "shards" / "shard_002");
  const auto damaged = store.verify(dir_ / "shards");
  EXPECT_EQ(damaged, (std::vector<std::size_t>{2}));
}

TEST_F(ShardStoreTest, RepairsUpToMShards) {
  const dialga::DialgaCodec codec(6, 2);
  const ShardStore store(codec, 512);
  ASSERT_TRUE(store.encode_file(write_input(20000, 4), dir_ / "shards"));
  corrupt_shard(0, 100);
  fs::remove(dir_ / "shards" / "shard_007");  // a parity shard

  const RepairReport report = store.repair(dir_ / "shards");
  EXPECT_EQ(report.damaged, (std::vector<std::size_t>{0, 7}));
  EXPECT_EQ(report.repaired, report.damaged);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(store.verify(dir_ / "shards").empty());
}

TEST_F(ShardStoreTest, RefusesBeyondTolerance) {
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 1024);
  ASSERT_TRUE(store.encode_file(write_input(8192, 5), dir_ / "shards"));
  corrupt_shard(0, 1);
  corrupt_shard(1, 1);
  corrupt_shard(2, 1);
  const RepairReport report = store.repair(dir_ / "shards");
  EXPECT_EQ(report.damaged.size(), 3u);
  EXPECT_TRUE(report.repaired.empty());
  EXPECT_FALSE(store.decode_file(dir_ / "shards", dir_ / "out.bin"));
}

TEST_F(ShardStoreTest, DecodeRepairsInMemory) {
  const ec::IsalCodec codec(5, 3);
  const ShardStore store(codec, 512);
  const fs::path input = write_input(7777, 6);
  ASSERT_TRUE(store.encode_file(input, dir_ / "shards"));
  corrupt_shard(2, 50);
  corrupt_shard(4, 200);
  ASSERT_TRUE(store.decode_file(dir_ / "shards", dir_ / "out.bin"));
  EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));
}

TEST_F(ShardStoreTest, TinyFileSingleStripe) {
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 256);
  const fs::path input = write_input(10, 7);
  ASSERT_TRUE(store.encode_file(input, dir_ / "shards"));
  fs::remove(dir_ / "shards" / "shard_000");
  ASSERT_TRUE(store.repair(dir_ / "shards").ok());
  ASSERT_TRUE(store.decode_file(dir_ / "shards", dir_ / "out.bin"));
  EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));
}

TEST_F(ShardStoreTest, ManifestParserSurvivesFuzz) {
  // Random garbage, random truncations of a valid manifest, and random
  // token substitutions: parse() must never crash and must reject
  // anything structurally incomplete.
  Manifest valid;
  valid.k = 6;
  valid.m = 2;
  valid.block_size = 1024;
  valid.file_size = 5000;
  valid.shard_checksums.assign(8, 17);
  const std::string good = valid.serialize();

  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    switch (trial % 3) {
      case 0: {  // pure garbage
        const std::size_t n = rng() % 200;
        for (std::size_t i = 0; i < n; ++i)
          text += static_cast<char>(rng() % 128);
        break;
      }
      case 1:  // truncated valid manifest
        text = good.substr(0, rng() % good.size());
        break;
      case 2: {  // single-byte corruption of a valid manifest
        text = good;
        text[rng() % text.size()] = static_cast<char>(rng() % 128);
        break;
      }
    }
    const auto parsed = Manifest::parse(text);  // must not crash
    if (parsed) {
      // Anything accepted must be structurally consistent.
      EXPECT_EQ(parsed->shard_checksums.size(), parsed->k + parsed->m);
      EXPECT_GT(parsed->k, 0u);
      EXPECT_GT(parsed->block_size, 0u);
    }
  }
}

TEST_F(ShardStoreTest, BackendsEmitBitIdenticalShardsAndNoTempFiles) {
  const ec::IsalCodec codec(4, 2);
  const fs::path input = write_input(100000, 8);

  ShardStore stdio_store(codec, 1024);
  stdio_store.set_aio_mode(aio::Mode::kStdio);
  ASSERT_TRUE(stdio_store.encode_file(input, dir_ / "stdio"));
  ASSERT_TRUE(stdio_store.decode_file(dir_ / "stdio", dir_ / "out_s.bin"));
  EXPECT_EQ(slurp(input), slurp(dir_ / "out_s.bin"));

  if (!aio::Ring::KernelSupported()) {
    GTEST_SKIP() << "io_uring unavailable: stdio-only run";
  }
  ShardStore uring_store(codec, 1024);
  uring_store.set_aio_mode(aio::Mode::kUring);
  ASSERT_TRUE(uring_store.encode_file(input, dir_ / "uring"));
  ASSERT_TRUE(uring_store.decode_file(dir_ / "uring", dir_ / "out_u.bin"));
  EXPECT_EQ(slurp(input), slurp(dir_ / "out_u.bin"));

  // The two shard directories must be byte-for-byte identical, and the
  // durable-write protocol must leave no temp files behind.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_ / "stdio")) {
    ++files;
    const auto name = e.path().filename();
    EXPECT_EQ(slurp(e.path()), slurp(dir_ / "uring" / name)) << name;
    EXPECT_EQ(name.string().find(".tmp-"), std::string::npos) << name;
  }
  EXPECT_EQ(files, 4 + 2 + 1u);  // k + m shards + manifest
}

TEST_F(ShardStoreTest, FailedReencodePreservesThePreviousGeneration) {
  const ec::IsalCodec codec(4, 2);
  const ShardStore store(codec, 1024);
  const fs::path v1 = write_input(9000, 9);
  const auto v1_bytes = slurp(v1);
  ASSERT_TRUE(store.encode_file(v1, dir_ / "shards"));

  // Re-encode different content into the same directory with every
  // write failing: the durable protocol must leave generation 1 fully
  // decodable (temp files never replace the real ones).
  const fs::path v2 = write_input(12000, 10);
  {
    fault::SitePlan plan;
    plan.probability = 1.0;
    plan.error = EIO;
    const fault::ScopedPlan scoped("shard.write", plan);
    const Status st = store.encode_file(v2, dir_ / "shards");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.kind, Status::Kind::kIoError);
  }
  ASSERT_TRUE(store.decode_file(dir_ / "shards", dir_ / "out.bin"));
  EXPECT_EQ(slurp(dir_ / "out.bin"), v1_bytes);
}

TEST_F(ShardStoreTest, RetryBackoffIsClampedToTheDeadline) {
  using namespace std::chrono_literals;
  const ec::IsalCodec codec(4, 2);
  ShardStore store(codec, 1024);
  ASSERT_TRUE(store.encode_file(write_input(8192, 11), dir_ / "shards"));

  // Every read fails EINTR forever. An unclamped schedule would sleep
  // ~20ms doubling per attempt for 50 attempts (tens of seconds); the
  // deadline clamp caps total backoff at ~50ms, so the operation must
  // return an explicit failure almost immediately.
  ServicePolicy policy;
  policy.deadline = 50ms;
  policy.retry.max_retries = 50;
  policy.retry.base_delay = 20ms;
  policy.retry.max_delay = 500ms;
  store.set_service_policy(policy);
  fault::SitePlan plan;
  plan.probability = 1.0;
  plan.error = EINTR;
  const fault::ScopedPlan scoped("shard.read", plan);

  const auto t0 = std::chrono::steady_clock::now();
  const Status st = store.decode_file(dir_ / "shards", dir_ / "out.bin");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.kind, Status::Kind::kRetryExhausted) << st.message();
  EXPECT_LT(elapsed, 2s) << "backoff ignored the deadline budget";
}

TEST_F(ShardStoreTest, ChecksumIsStable) {
  const std::vector<std::byte> data{std::byte{1}, std::byte{2},
                                    std::byte{3}};
  EXPECT_EQ(Checksum(data.data(), data.size()),
            Checksum(data.data(), data.size()));
  EXPECT_NE(Checksum(data.data(), 2), Checksum(data.data(), 3));
}

}  // namespace
}  // namespace shard
