// BandwidthGovernor behavior: the headroom gate that shields degraded
// reads from bulk, the watermark hysteresis that keeps bulk from
// wedging, the pressure clamp driven by DIALGA's contention signals
// (gauge, fault site, per-node reports) with its hold-window release,
// exact byte accounting under concurrency (run under TSan in CI), the
// cluster TokenBucket's rate-scale invariant, and a service-level
// rebuild-storm case proving a governed flood of bulk encodes never
// starves degraded reads.
//
// Time is injected everywhere (GovernorConfig::now_ns /
// cluster::VirtualTime::Manual), so the clamp's engage/hold/release
// cycle and the bucket's pacing are asserted in deterministic virtual
// time.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <iterator>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/token_bucket.h"
#include "ec/isal.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "svc/governor.h"
#include "svc/stripe_service.h"

namespace svc {
namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

/// Governor on a hand-cranked clock; pressure signals zeroed so tests
/// start from a known-quiet world regardless of suite order.
struct ManualGovernor {
  std::uint64_t now_ns = 1'000'000'000;  // nonzero: "until 0" is past
  BandwidthGovernor gov;

  explicit ManualGovernor(GovernorConfig cfg = {})
      : gov(WithClock(std::move(cfg), &now_ns)) {}

  static GovernorConfig WithClock(GovernorConfig cfg, std::uint64_t* t) {
    obs::Registry::Global().gauge("dialga_coord_contention").set(0.0);
    fault::Injector::Global().remove("qos.contention");
    cfg.now_ns = [t] { return *t; };
    return cfg;
  }
};

/// Push the EWMA well above ratio * floor: the floor creeps up only
/// floor_decay per sample, so a burst of slow samples opens the gap.
void DriveEwmaHigh(BandwidthGovernor& g, double slow_s = 1e-3) {
  for (int i = 0; i < 30; ++i) {
    g.observe_latency(TrafficClass::kDegradedRead, slow_s);
  }
}

/// Pull the EWMA back to the floor with fast samples.
void DriveEwmaLow(BandwidthGovernor& g, double fast_s = 100e-6) {
  for (int i = 0; i < 40; ++i) {
    g.observe_latency(TrafficClass::kDegradedRead, fast_s);
  }
}

TEST(Governor, LatencyClassesAlwaysAdmitAndDispatch) {
  GovernorConfig cfg;
  cfg.backstop_bytes = 1;  // would reject any throttled admission
  ManualGovernor m(cfg);

  EXPECT_TRUE(m.gov.try_admit(TrafficClass::kDegradedRead, 16 * kMiB));
  EXPECT_TRUE(m.gov.try_admit(TrafficClass::kInteractiveRead, 16 * kMiB));
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kDegradedRead, 16 * kMiB));
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kInteractiveRead, 16 * kMiB));

  const auto s = m.gov.snapshot();
  EXPECT_EQ(s.deferrals, 0u);
  EXPECT_EQ(s.rejected_backstop, 0u);
}

TEST(Governor, BackstopRejectsThrottledClassOverBudget) {
  GovernorConfig cfg;
  cfg.backstop_bytes = 1 * kMiB;
  ManualGovernor m(cfg);

  EXPECT_TRUE(m.gov.try_admit(TrafficClass::kBulkEncode, 1 * kMiB));
  EXPECT_FALSE(m.gov.try_admit(TrafficClass::kBulkEncode, 1))
      << "queued + in-flight past the backstop must reject";
  const auto s = m.gov.snapshot();
  EXPECT_EQ(s.rejected_backstop, 1u);
  // The rejected bytes were never accounted.
  EXPECT_EQ(s.queued_bytes[static_cast<std::size_t>(
                TrafficClass::kBulkEncode)],
            1 * kMiB);
}

TEST(Governor, OpportunisticDrainRequiresDegradedHeadroom) {
  GovernorConfig cfg;
  cfg.degraded_headroom_ratio = 1.5;
  ManualGovernor m(cfg);

  // A latency-sensitive request is outstanding, and its observed
  // latency has blown past ratio * floor: bulk must defer.
  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kDegradedRead, 64 * kKiB));
  DriveEwmaLow(m.gov);   // establish the low-pressure floor
  DriveEwmaHigh(m.gov);  // then lose the headroom
  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kBulkEncode, 64 * kKiB));
  EXPECT_FALSE(m.gov.try_dispatch(TrafficClass::kBulkEncode, 64 * kKiB));
  EXPECT_EQ(m.gov.snapshot().deferrals, 1u);

  // Latency recovers -> the same batch drains opportunistically.
  DriveEwmaLow(m.gov);
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kBulkEncode, 64 * kKiB));
  const auto s = m.gov.snapshot();
  EXPECT_EQ(s.opportunistic_drains, 1u);
  EXPECT_EQ(s.forced_drains, 0u);
}

TEST(Governor, NoLatencyTrafficOutstandingBypassesHeadroom) {
  ManualGovernor m;
  DriveEwmaLow(m.gov);
  DriveEwmaHigh(m.gov);  // EWMA terrible, but nobody is waiting
  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kBulkEncode, 64 * kKiB));
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kBulkEncode, 64 * kKiB))
      << "with no latency-class bytes outstanding there is nobody to "
         "shield; bulk must not be held back";
}

TEST(Governor, WatermarkHysteresisForcesDrainUntilLow) {
  GovernorConfig cfg;
  cfg.high_watermark_bytes = 1 * kMiB;
  cfg.low_watermark_bytes = 256 * kKiB;
  cfg.bulk_inflight_cap = 64 * kKiB;
  ManualGovernor m(cfg);

  // No headroom and latency traffic outstanding: the opportunistic
  // path is closed, so every grant below must come from the forced
  // drain.
  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kDegradedRead, 64 * kKiB));
  DriveEwmaLow(m.gov);
  DriveEwmaHigh(m.gov);

  const std::uint64_t chunk = 64 * kKiB;
  const std::uint64_t total = 2 * kMiB;
  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kBulkEncode, total));

  // Backlog (2 MiB) >= high watermark: drain engages and stays on
  // until the backlog falls to the low watermark.
  std::uint64_t drained = 0;
  while (drained + chunk <= total - cfg.low_watermark_bytes) {
    ASSERT_TRUE(m.gov.try_dispatch(TrafficClass::kBulkEncode, chunk))
        << "forced drain must ignore the headroom gate and the "
           "in-flight cap (drained so far: "
        << drained << ")";
    drained += chunk;
  }
  auto s = m.gov.snapshot();
  EXPECT_EQ(s.high_crossings, 1u);
  EXPECT_TRUE(s.draining);
  EXPECT_EQ(s.forced_drains, drained / chunk);

  // Backlog now == low watermark: the next attempt disengages the
  // drain and falls back to the (closed) opportunistic path.
  EXPECT_FALSE(m.gov.try_dispatch(TrafficClass::kBulkEncode, chunk));
  s = m.gov.snapshot();
  EXPECT_EQ(s.low_crossings, 1u);
  EXPECT_FALSE(s.draining);
  EXPECT_EQ(s.deferrals, 1u);
}

TEST(Governor, OversizedBatchBorrowsOnlyWhenClassIdle) {
  GovernorConfig cfg;
  cfg.bulk_inflight_cap = 1 * kMiB;
  ManualGovernor m(cfg);

  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kBulkEncode, 8 * kMiB));
  // Idle class: a 4 MiB batch borrows past the 1 MiB budget.
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kBulkEncode, 4 * kMiB));
  // Busy class: the next one waits for the borrow to retire.
  EXPECT_FALSE(m.gov.try_dispatch(TrafficClass::kBulkEncode, 4 * kMiB));
  m.gov.on_complete(TrafficClass::kBulkEncode, 4 * kMiB);
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kBulkEncode, 4 * kMiB));
}

TEST(Governor, ClampEngagesOnFaultSiteAndReleasesAfterHold) {
  GovernorConfig cfg;
  cfg.bulk_inflight_cap = 1 * kMiB;
  cfg.clamp_factor = 0.25;
  cfg.pressure_hold_ns = 50'000'000;
  ManualGovernor m(cfg);

  // Deterministic contention: the "qos.contention" site fires exactly
  // once (the first poll), standing in for the paper's PMU-derived
  // read-pressure bit.
  fault::SitePlan plan;
  plan.nth = {1};
  fault::ScopedPlan scoped("qos.contention", plan);

  EXPECT_FALSE(m.gov.pressure());
  m.gov.poll();
  EXPECT_TRUE(m.gov.pressure());
  EXPECT_DOUBLE_EQ(m.gov.rate_scale(), 0.25);
  EXPECT_EQ(m.gov.snapshot().clamp_engaged, 1u);

  // The scrub budget is clamped to 256 KiB while pressure holds:
  // 256 KiB in flight fills it, the next chunk defers.
  ASSERT_TRUE(m.gov.try_admit(TrafficClass::kScrub, 512 * kKiB));
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kScrub, 256 * kKiB));
  EXPECT_FALSE(m.gov.try_dispatch(TrafficClass::kScrub, 256 * kKiB))
      << "clamped scrub budget must defer what the unclamped budget "
         "would admit";

  // The hold window expires without a fresh signal: clamp releases
  // and the same chunk now fits the full 1 MiB budget.
  m.now_ns += cfg.pressure_hold_ns + 1;
  m.gov.poll();
  EXPECT_FALSE(m.gov.pressure());
  EXPECT_DOUBLE_EQ(m.gov.rate_scale(), 1.0);
  EXPECT_TRUE(m.gov.try_dispatch(TrafficClass::kScrub, 256 * kKiB));
}

TEST(Governor, CoordinatorContentionGaugeEngagesClamp) {
  GovernorConfig cfg;
  cfg.pressure_hold_ns = 10'000'000;
  ManualGovernor m(cfg);
  auto& gauge = obs::Registry::Global().gauge("dialga_coord_contention");

  gauge.set(1.0);
  m.gov.poll();
  EXPECT_TRUE(m.gov.pressure());

  // While the gauge stays up the hold window keeps refreshing.
  m.now_ns += cfg.pressure_hold_ns / 2;
  m.gov.poll();
  m.now_ns += cfg.pressure_hold_ns / 2;
  m.gov.poll();
  EXPECT_TRUE(m.gov.pressure());

  gauge.set(0.0);
  m.now_ns += cfg.pressure_hold_ns + 1;
  m.gov.poll();
  EXPECT_FALSE(m.gov.pressure());
}

TEST(Governor, ReportPressureAggregatesAcrossNodes) {
  ManualGovernor m;

  m.gov.report_pressure(/*source=*/1, true);
  EXPECT_TRUE(m.gov.pressure());
  m.gov.report_pressure(/*source=*/2, true);
  m.gov.report_pressure(/*source=*/1, false);
  EXPECT_TRUE(m.gov.pressure()) << "any contended node keeps the clamp";
  m.gov.report_pressure(/*source=*/2, false);
  EXPECT_FALSE(m.gov.pressure()) << "all nodes quiet releases it";
}

// Byte-conservation invariants under concurrent admit / dispatch /
// complete / drop from several threads — the CI tsan job runs this
// binary, so a data race in the governor fails there, and a lost or
// double-counted byte fails the exact equalities here.
TEST(Governor, ByteAccountingExactUnderConcurrency) {
  GovernorConfig cfg;
  cfg.backstop_bytes = 0;  // unlimited: no rejected bytes to model
  ManualGovernor m(cfg);
  BandwidthGovernor& g = m.gov;

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  const TrafficClass classes[] = {
      TrafficClass::kInteractiveRead, TrafficClass::kDegradedRead,
      TrafficClass::kBulkEncode, TrafficClass::kScrub,
      TrafficClass::kRebuild};

  std::atomic<std::uint64_t> expect_admitted{0}, expect_dropped{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        const TrafficClass cls = classes[rng() % std::size(classes)];
        const std::uint64_t bytes = 1 + rng() % (256 * kKiB);
        ASSERT_TRUE(g.try_admit(cls, bytes));
        expect_admitted.fetch_add(bytes, std::memory_order_relaxed);
        if (rng() % 8 == 0) {
          g.on_drop(cls, bytes);  // cancelled before dispatch
          expect_dropped.fetch_add(bytes, std::memory_order_relaxed);
          continue;
        }
        if (!g.try_dispatch(cls, bytes)) g.force_dispatch(cls, bytes);
        g.observe_latency(cls, 1e-4);
        g.on_complete(cls, bytes);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = g.snapshot();
  std::uint64_t admitted = 0, dispatched = 0, completed = 0, dropped = 0;
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    EXPECT_EQ(s.queued_bytes[i], 0u) << to_string(classes[i]);
    EXPECT_EQ(s.inflight_bytes[i], 0u) << to_string(classes[i]);
    EXPECT_EQ(s.admitted_bytes[i],
              s.dispatched_bytes[i] + s.dropped_bytes[i])
        << to_string(classes[i]);
    EXPECT_EQ(s.dispatched_bytes[i], s.completed_bytes[i])
        << to_string(classes[i]);
    admitted += s.admitted_bytes[i];
    dispatched += s.dispatched_bytes[i];
    completed += s.completed_bytes[i];
    dropped += s.dropped_bytes[i];
  }
  EXPECT_EQ(admitted, expect_admitted.load());
  EXPECT_EQ(dropped, expect_dropped.load());
  EXPECT_EQ(completed, dispatched);
}

TEST(TokenBucket, RateScaleClampsToUnitInterval) {
  std::uint64_t t = 0;
  cluster::TokenBucket b(1000.0, 1000.0, cluster::VirtualTime::Manual(&t));
  EXPECT_DOUBLE_EQ(b.rate_scale(), 1.0);
  b.set_rate_scale(4.0);
  EXPECT_DOUBLE_EQ(b.rate_scale(), 1.0) << "scale never exceeds 1: the "
                                           "configured rate is a ceiling";
  b.set_rate_scale(0.0);
  EXPECT_GT(b.rate_scale(), 0.0) << "scale 0 would wedge the bucket";
  b.set_rate_scale(0.25);
  EXPECT_DOUBLE_EQ(b.effective_rate(), 250.0);
}

TEST(TokenBucket, ScaledBucketPacesAtScaledRateInVirtualTime) {
  std::uint64_t t = 0;
  cluster::TokenBucket b(1'000'000.0, 1'000'000.0,
                         cluster::VirtualTime::Manual(&t));
  b.throttle(1'000'000);  // drain the initial burst, no wait
  EXPECT_EQ(b.waits(), 0u);

  b.set_rate_scale(0.25);
  const std::uint64_t t0 = t;
  b.throttle(500'000);  // refills at 250 KB/s of virtual time
  EXPECT_GT(b.waits(), 0u);
  const double elapsed_s = static_cast<double>(t - t0) / 1e9;
  EXPECT_GE(elapsed_s, 0.5 / 0.25 * 0.9)
      << "500 KB at a 0.25-scaled 1 MB/s bucket is ~2 s of virtual time";
  EXPECT_EQ(b.granted(), 1'500'000u);
}

/// Delegating codec whose encode parks the worker briefly — long
/// enough for the dispatcher to run ahead and find the bulk class
/// busy, so the storm below exercises the defer/park/retry path
/// deterministically instead of depending on scheduler interleaving.
class SlowEncodeCodec : public ec::Codec {
 public:
  explicit SlowEncodeCodec(const ec::Codec& inner) : inner_(inner) {}
  std::string name() const override { return inner_.name(); }
  ec::CodeParams params() const override { return inner_.params(); }
  ec::SimdWidth simd() const override { return inner_.simd(); }
  void encode(std::size_t block_size,
              std::span<const std::byte* const> data,
              std::span<std::byte* const> parity) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    inner_.encode(block_size, data, parity);
  }
  bool decode(std::size_t block_size, std::span<std::byte* const> blocks,
              std::span<const std::size_t> erasures) const override {
    return inner_.decode(block_size, blocks, erasures);
  }
  ec::EncodePlan encode_plan(std::size_t block_size,
                             const simmem::ComputeCost& cost) const override {
    return inner_.encode_plan(block_size, cost);
  }
  ec::EncodePlan decode_plan(
      std::size_t block_size, const simmem::ComputeCost& cost,
      std::span<const std::size_t> erasures) const override {
    return inner_.decode_plan(block_size, cost, erasures);
  }

 private:
  const ec::Codec& inner_;
};

/// Fixed seeds 1..8, narrowed to one by CHAOS_SEED so CI fans the
/// storm out as a matrix without rebuilding (same contract as
/// chaos_test).
std::vector<std::uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

// Service-level rebuild storm under seeded contention chaos: a
// governed flood of bulk-encode and rebuild traffic plus degraded
// reads, with the "qos.contention" fault site randomly flipping the
// DIALGA pressure bit mid-storm (engaging the scrub/rebuild clamp).
// Every degraded read must be served (none rejected, none starved
// into kDeadlineExceeded), every bulk future must resolve kOk, the
// governor's byte accounting must return to zero, and the storm must
// visibly have been shaped.
TEST(GovernedService, RebuildStormNeverStarvesDegradedReads) {
  for (const std::uint64_t seed : ChaosSeeds()) {
    fault::Injector::Global().clear();
    fault::Injector::Global().set_seed(seed);
    fault::SitePlan contention;
    contention.probability = 0.15;  // seeded: replays per seed
    fault::Injector::Global().install("qos.contention", contention);
    GovernorConfig gc;
    // Below one stripe's bytes ((k + m) * block = 96 KiB): every bulk
    // batch borrows alone, so a storm always defers — the shaping
    // assertion below cannot flake on a fast box.
    gc.bulk_inflight_cap = 64 * kKiB;
    gc.degraded_headroom_ratio = 2.5;
    gc.max_defer_ns = 20'000'000;
    BandwidthGovernor governor(gc);

    StripeService::Config cfg;
    cfg.queue_capacity = 4096;
    cfg.max_batch = 1;
    cfg.governor = &governor;
    cfg.latency_pool_threads = 1;
    StripeService service(cfg);

    const StripeShape sh{4, 2, 16 * 1024};
    const ec::IsalCodec codec(sh.k, sh.m);
    const SlowEncodeCodec slow(codec);  // bulk only; decodes stay fast
    constexpr std::size_t kBulk = 96;
    constexpr std::size_t kDeg = 24;

    // One buffer set per stripe, bulk first then degraded-read ones.
    std::vector<std::vector<std::vector<std::byte>>> stripes(kBulk + kDeg);
    std::mt19937_64 rng(seed);
    for (auto& blocks : stripes) {
      blocks.resize(sh.k + sh.m);
      for (std::size_t i = 0; i < sh.k + sh.m; ++i) {
        blocks[i].resize(sh.block_size);
        if (i < sh.k) {
          for (auto& x : blocks[i]) x = static_cast<std::byte>(rng());
        }
      }
    }
    auto encode_req = [&](std::size_t s) {
      EncodeRequest req;
      req.shape = sh;
      req.codec = &slow;
      for (std::size_t i = 0; i < sh.k; ++i) {
        req.data.push_back(stripes[s][i].data());
      }
      for (std::size_t j = 0; j < sh.m; ++j) {
        req.parity.push_back(stripes[s][sh.k + j].data());
      }
      return req;
    };

    // Pre-encode the degraded stripes serially so their parity is
    // valid, then blank block 0 to make each read a reconstruction.
    std::vector<std::vector<std::byte>> golden(kDeg);
    for (std::size_t d = 0; d < kDeg; ++d) {
      const std::size_t s = kBulk + d;
      auto req = encode_req(s);
      codec.encode(sh.block_size, req.data, req.parity);
      golden[d] = stripes[s][0];
      std::fill(stripes[s][0].begin(), stripes[s][0].end(), std::byte{0});
    }

    // The storm: every bulk/rebuild encode in flight before the first
    // degraded read is submitted. Odd stripes are tagged kRebuild so
    // the contention clamp has a class to squeeze.
    std::vector<std::future<Result>> bulk;
    bulk.reserve(kBulk);
    for (std::size_t s = 0; s < kBulk; ++s) {
      auto req = encode_req(s);
      if (s % 2 == 1) req.qos_class = TrafficClass::kRebuild;
      bulk.push_back(service.submit(std::move(req)));
    }
    std::vector<std::future<Result>> degraded;
    degraded.reserve(kDeg);
    for (std::size_t d = 0; d < kDeg; ++d) {
      const std::size_t s = kBulk + d;
      DecodeRequest req;
      req.shape = sh;
      req.codec = &codec;
      req.erasures = {0};
      for (std::size_t i = 0; i < sh.k + sh.m; ++i) {
        req.blocks.push_back(stripes[s][i].data());
      }
      degraded.push_back(service.submit(std::move(req)));
    }

    for (std::size_t d = 0; d < kDeg; ++d) {
      const Result r = degraded[d].get();
      ASSERT_EQ(r.status, StatusCode::kOk)
          << "seed " << seed << " degraded read " << d << ": "
          << to_string(r.status);
      EXPECT_EQ(stripes[kBulk + d][0], golden[d])
          << "seed " << seed << " reconstruction mismatch";
    }
    for (auto& f : bulk) EXPECT_EQ(f.get().status, StatusCode::kOk);
    service.shutdown();

    const auto gs = governor.snapshot();
    for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
      EXPECT_EQ(gs.queued_bytes[i], 0u)
          << "seed " << seed << " class "
          << to_string(static_cast<TrafficClass>(i));
      EXPECT_EQ(gs.inflight_bytes[i], 0u)
          << "seed " << seed << " class "
          << to_string(static_cast<TrafficClass>(i));
    }
    // The storm must actually have been shaped, not waved through.
    EXPECT_GT(gs.deferrals + gs.forced_drains + gs.aged_drains, 0u)
        << "seed " << seed
        << " opportunistic=" << gs.opportunistic_drains;
    // At p = 0.15 per poll over hundreds of polls, a storm with no
    // clamp engagement is a broken pressure path, not bad luck.
    EXPECT_GE(gs.clamp_engaged, 1u) << "seed " << seed;

    fault::Injector::Global().clear();
  }
}

}  // namespace
}  // namespace svc
