// Pins eccli's three renditions of the exit-code contract to each
// other: the kExit* constants (what the tool actually returns), the
// --help table in cli/eccli_usage.h (what the tool tells the user),
// and the markdown table in docs/usage.md (what the docs promise).
// The table had drifted once — the help text stopped at 4 while the
// tool exited 5 and 6 — and this test is what keeps that from
// happening again: adding an exit code without updating both tables
// fails here, not in a user's script.
#include "cli/eccli_usage.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

constexpr int kAllCodes[] = {
    cli::kExitOk,     cli::kExitDamaged,  cli::kExitUsage, cli::kExitIo,
    cli::kExitDeadline, cli::kExitQuorum, cli::kExitHealed,
};

// The codes are a dense 0..6 range — scripts rely on `6` meaning
// healed, so renumbering is a breaking change this test makes loud.
TEST(EccliHelp, ExitCodesAreDenseAndStable) {
  std::set<int> seen(std::begin(kAllCodes), std::end(kAllCodes));
  ASSERT_EQ(seen.size(), std::size(kAllCodes)) << "duplicate exit codes";
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 6);
  EXPECT_EQ(cli::kExitOk, 0);
  EXPECT_EQ(cli::kExitDamaged, 1);
  EXPECT_EQ(cli::kExitUsage, 2);
  EXPECT_EQ(cli::kExitIo, 3);
  EXPECT_EQ(cli::kExitDeadline, 4);
  EXPECT_EQ(cli::kExitQuorum, 5);
  EXPECT_EQ(cli::kExitHealed, 6);
}

// Every constant has a `  <code>  <meaning>` line in the help table,
// and the table has no codes the tool never returns.
TEST(EccliHelp, UsageTableCoversEveryExitCode) {
  std::istringstream in(cli::kUsageExitCodes);
  std::set<int> documented;
  std::string line;
  while (std::getline(in, line)) {
    // A table row is exactly "  <digit>  ..." — continuation lines
    // (wrapped meanings) are indented deeper and skipped.
    if (line.size() >= 5 && line[0] == ' ' && line[1] == ' ' &&
        line[2] >= '0' && line[2] <= '9' && line[3] == ' ' &&
        line[4] == ' ') {
      documented.insert(line[2] - '0');
    }
  }
  for (const int code : kAllCodes) {
    EXPECT_TRUE(documented.count(code))
        << "exit code " << code << " missing from kUsageExitCodes";
  }
  EXPECT_EQ(documented.size(), std::size(kAllCodes))
      << "kUsageExitCodes documents a code eccli never returns";
}

// The usage text advertises the flags this PR added; a help header
// that silently loses them is as much drift as a stale exit table.
TEST(EccliHelp, UsageTextMentionsHelpAndQos) {
  const std::string text = cli::kUsageText;
  EXPECT_NE(text.find("--help"), std::string::npos);
  EXPECT_NE(text.find("--qos"), std::string::npos);
  EXPECT_NE(text.find("docs/qos.md"), std::string::npos);
}

// docs/usage.md's markdown table must carry a `| <code> |` row for
// every constant. Path injected by the build (DIALGA_DOCS_USAGE) so
// the test runs from any working directory.
TEST(EccliHelp, DocsUsageTableCoversEveryExitCode) {
#ifndef DIALGA_DOCS_USAGE
  GTEST_SKIP() << "DIALGA_DOCS_USAGE not defined by the build";
#else
  std::ifstream in(DIALGA_DOCS_USAGE);
  ASSERT_TRUE(in) << "cannot open " << DIALGA_DOCS_USAGE;
  std::set<int> documented;
  std::string line;
  while (std::getline(in, line)) {
    for (const int code : kAllCodes) {
      const std::string row = "| " + std::to_string(code) + " |";
      if (line.rfind(row, 0) == 0) documented.insert(code);
    }
  }
  for (const int code : kAllCodes) {
    EXPECT_TRUE(documented.count(code))
        << "exit code " << code << " missing from docs/usage.md table";
  }
#endif
}

}  // namespace
