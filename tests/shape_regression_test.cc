// Shape-regression tests: pin the paper's qualitative results as cheap
// assertions so calibration drift is caught by ctest, not by eyeballing
// bench output. Workloads are scaled down (4-8 MiB) — these check
// orderings and coarse ratios, not the figures themselves.
#include <gtest/gtest.h>

#include "bench_util/runner.h"
#include "dialga/dialga.h"
#include "ec/isal.h"
#include "ec/isal_decompose.h"
#include "ec/lrc.h"
#include "ec/xor_codec.h"

namespace {

using bench_util::RunEncode;
using bench_util::RunDecode;
using bench_util::WorkloadConfig;

WorkloadConfig Wl(std::size_t k, std::size_t m, std::size_t bs,
                  std::size_t mib = 6) {
  WorkloadConfig wl;
  wl.k = k;
  wl.m = m;
  wl.block_size = bs;
  wl.total_data_bytes = mib << 20;
  return wl;
}

TEST(ShapeObservation3, StreamerCliffBeyond32Streams) {
  const simmem::SimConfig cfg;
  const double at_32 =
      RunEncode(cfg, Wl(32, 4, 4096), ec::IsalCodec(32, 4)).gbps;
  const double at_40 =
      RunEncode(cfg, Wl(40, 4, 4096), ec::IsalCodec(40, 4)).gbps;
  EXPECT_GT(at_32, 3.0 * at_40) << "the k > 32 cliff must be dramatic";
}

TEST(ShapeObservation4, OneKbAmplificationBand) {
  // Fig. 6: 1 KB blocks amplify media reads by roughly 23-37 % under
  // hardware prefetching. Allow a wide band; catching gross drift is
  // the point.
  const simmem::SimConfig cfg;
  const auto r = RunEncode(cfg, Wl(28, 24, 1024), ec::IsalCodec(28, 24));
  EXPECT_GT(r.media_amplification(), 1.15);
  EXPECT_LT(r.media_amplification(), 1.6);
}

TEST(ShapeObservation4, FourKbNoAmplification) {
  const simmem::SimConfig cfg;
  const auto r = RunEncode(cfg, Wl(28, 24, 4096), ec::IsalCodec(28, 24));
  EXPECT_LT(r.media_amplification(), 1.05);
}

TEST(ShapeObservation5, HighConcurrencyThrashesBuffer) {
  simmem::SimConfig cfg;
  WorkloadConfig wl = Wl(28, 24, 1024, 24);
  wl.threads = 18;
  const auto r = RunEncode(cfg, wl, ec::IsalCodec(28, 24));
  EXPECT_GT(r.media_amplification(), 1.8)
      << "18 threads x 28 streams must thrash the 96 KB buffer";
  EXPECT_GT(r.pmu.pm_buffer_wasted_fills, 10000u);
}

TEST(ShapeFig10, SystemOrderingNarrowStripe) {
  const simmem::SimConfig cfg;
  const auto wl = Wl(12, 4, 1024);
  const double isal = RunEncode(cfg, wl, ec::IsalCodec(12, 4)).gbps;
  const double isal_d =
      RunEncode(cfg, wl, ec::IsalDecomposeCodec(12, 4)).gbps;
  const double cerasure = RunEncode(cfg, wl, *ec::MakeCerasure(12, 4)).gbps;
  EXPECT_GT(isal, isal_d);
  EXPECT_GT(isal_d, cerasure);
}

TEST(ShapeFig10, WideStripeOrderingFlips) {
  const simmem::SimConfig cfg;
  const auto wl = Wl(48, 4, 1024);
  const double isal = RunEncode(cfg, wl, ec::IsalCodec(48, 4)).gbps;
  const double isal_d =
      RunEncode(cfg, wl, ec::IsalDecomposeCodec(48, 4)).gbps;
  EXPECT_GT(isal_d, isal)
      << "decompose must beat plain ISA-L once the streamer dies";
}

TEST(ShapeFig14, XorDecodeCollapses) {
  const simmem::SimConfig cfg;
  const auto wl = Wl(12, 4, 1024);
  const std::vector<std::size_t> erasures{0, 1, 2, 3};
  const double isal =
      RunDecode(cfg, wl, ec::IsalCodec(12, 4), erasures).gbps;
  const double cerasure =
      RunDecode(cfg, wl, *ec::MakeCerasure(12, 4), erasures).gbps;
  EXPECT_GT(isal, 1.3 * cerasure)
      << "table-lookup decode must dominate XOR decode";
}

TEST(ShapeFig15, Avx256HurtsWideParityMost) {
  const simmem::SimConfig cfg;
  const auto wl = Wl(28, 24, 1024);
  const double wide =
      RunEncode(cfg, wl, ec::IsalCodec(28, 24, ec::SimdWidth::kAvx512)).gbps;
  const double narrow =
      RunEncode(cfg, wl, ec::IsalCodec(28, 24, ec::SimdWidth::kAvx256)).gbps;
  const double drop = 1.0 - narrow / wide;
  EXPECT_GT(drop, 0.10);
  EXPECT_LT(drop, 0.35);
}

TEST(ShapeFig16, LrcSlowerThanRs) {
  const simmem::SimConfig cfg;
  const ec::IsalCodec rs(12, 4);
  const ec::LrcCodec lrc(12, 4, 2);
  auto wl_rs = Wl(12, 4, 1024);
  const double rs_gbps = RunEncode(cfg, wl_rs, rs).gbps;
  auto wl_lrc = Wl(12, 4, 1024);
  const double lrc_gbps = RunEncode(cfg, wl_lrc, lrc).gbps;
  EXPECT_LT(lrc_gbps, rs_gbps)
      << "local parities cost extra compute and stores";
  EXPECT_GT(lrc_gbps, 0.5 * rs_gbps);
}

TEST(ShapeFig19, DialgaKillsHighPressureAmplification) {
  simmem::SimConfig cfg;
  WorkloadConfig wl = Wl(28, 24, 1024, 24);
  wl.threads = 18;
  const auto base = RunEncode(cfg, wl, ec::IsalCodec(28, 24));
  const dialga::DialgaCodec codec(28, 24);
  auto provider = codec.make_encode_provider({28, 24, 1024, 18}, cfg);
  const auto ours = bench_util::RunTimed(cfg, wl, *provider);
  EXPECT_LT(ours.media_amplification(), 0.6 * base.media_amplification());
  EXPECT_GT(ours.gbps, base.gbps);
}

TEST(ShapeWrites, SequentialParityWritesDoNotAmplify) {
  const simmem::SimConfig cfg;
  const auto r = RunEncode(cfg, Wl(12, 4, 1024), ec::IsalCodec(12, 4));
  EXPECT_NEAR(r.pmu.media_write_amplification(), 1.0, 0.05)
      << "streamed parity blocks must coalesce in the XPBuffer";
}

}  // namespace
