#include "dialga/dialga.h"

#include <gtest/gtest.h>

#include <random>

#include "bench_util/runner.h"
#include "ec/isal.h"

namespace dialga {
namespace {

struct Blocks {
  std::vector<std::vector<std::byte>> storage;
  std::vector<const std::byte*> data_ptrs;
  std::vector<std::byte*> parity_ptrs;
  std::vector<std::byte*> all_ptrs;
};

Blocks MakeBlocks(std::size_t k, std::size_t m, std::size_t bs,
                  std::uint64_t seed) {
  Blocks b;
  std::mt19937_64 rng(seed);
  b.storage.resize(k + m, std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& byte : b.storage[i]) byte = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < k; ++i) b.data_ptrs.push_back(b.storage[i].data());
  for (std::size_t j = 0; j < m; ++j)
    b.parity_ptrs.push_back(b.storage[k + j].data());
  for (auto& s : b.storage) b.all_ptrs.push_back(s.data());
  return b;
}

TEST(DialgaCodec, FunctionallyIdenticalToIsal) {
  // DIALGA only reschedules prefetches; the bytes must be bit-identical
  // to stock ISA-L.
  const std::size_t k = 10, m = 4, bs = 1024;
  const DialgaCodec dialga(k, m);
  const ec::IsalCodec isal(k, m);
  Blocks a = MakeBlocks(k, m, bs, 13);
  Blocks b = MakeBlocks(k, m, bs, 13);
  dialga.encode(bs, a.data_ptrs, a.parity_ptrs);
  isal.encode(bs, b.data_ptrs, b.parity_ptrs);
  EXPECT_EQ(a.storage, b.storage);
}

TEST(DialgaCodec, DecodeRoundTrips) {
  const std::size_t k = 8, m = 3, bs = 512;
  const DialgaCodec dialga(k, m);
  Blocks b = MakeBlocks(k, m, bs, 14);
  dialga.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{1, 5, 9};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(dialga.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(DialgaCodec, StaticPlanContainsPrefetches) {
  const DialgaCodec dialga(12, 4);
  const simmem::ComputeCost cost{};
  const ec::EncodePlan plan = dialga.encode_plan(1024, cost);
  EXPECT_GT(plan.count(ec::PlanOp::Kind::kPrefetch), 0u);
  // Same load/store structure as ISA-L.
  EXPECT_EQ(plan.count(ec::PlanOp::Kind::kLoad), 12u * 16u);
  EXPECT_EQ(plan.count(ec::PlanOp::Kind::kStore), 4u * 16u);
}

TEST(DialgaProvider, CachesPlansPerStrategy) {
  const DialgaCodec dialga(12, 4);
  simmem::SimConfig cfg;
  auto provider = dialga.make_encode_provider({12, 4, 1024, 1}, cfg);
  simmem::MemorySystem mem(cfg, 1);
  const ec::EncodePlan& p1 = provider->next_plan(0, mem);
  const ec::EncodePlan& p2 = provider->next_plan(0, mem);
  EXPECT_EQ(&p1, &p2) << "same strategy must return the cached plan";
  EXPECT_EQ(provider->plans_built(), 1u);
}

TEST(DialgaProvider, AdaptsDuringTimedRun) {
  const DialgaCodec dialga(12, 4);
  simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 8ull << 20;
  auto provider = dialga.make_encode_provider({12, 4, 1024, 1}, cfg);
  const auto r = bench_util::RunTimed(cfg, wl, *provider);
  EXPECT_GT(provider->coordinator().samples_taken(), 3u);
  EXPECT_GT(provider->plans_built(), 1u)
      << "hill climbing must have materialized several distances";
  EXPECT_GT(r.pmu.sw_prefetches_issued, 0u);
}

TEST(DialgaTimed, BeatsIsalOnSmallBlockPmEncode) {
  // The headline claim (Fig. 10): 1 KiB blocks on PM, narrow stripe.
  simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 8ull << 20;

  const ec::IsalCodec isal(12, 4);
  const auto base = bench_util::RunEncode(cfg, wl, isal);

  const DialgaCodec dialga(12, 4);
  auto provider = dialga.make_encode_provider({12, 4, 1024, 1}, cfg);
  const auto ours = bench_util::RunTimed(cfg, wl, *provider);

  EXPECT_GT(ours.gbps, base.gbps * 1.3);
}

TEST(DialgaTimed, RescuesWideStripeCollapse) {
  // k > 32 kills the HW streamer (Observation 3); software prefetch
  // must recover most of the loss.
  simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 48;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 8ull << 20;

  const ec::IsalCodec isal(48, 4);
  const auto base = bench_util::RunEncode(cfg, wl, isal);

  const DialgaCodec dialga(48, 4);
  auto provider = dialga.make_encode_provider({48, 4, 1024, 1}, cfg);
  const auto ours = bench_util::RunTimed(cfg, wl, *provider);

  EXPECT_GT(ours.gbps, base.gbps * 2.0);
}

TEST(DialgaTimed, HighConcurrencyUsesBufferFriendlyMode) {
  simmem::SimConfig cfg;
  const DialgaCodec dialga(28, 24);
  auto provider = dialga.make_encode_provider({28, 24, 1024, 16}, cfg);
  EXPECT_FALSE(provider->coordinator().initial_strategy().hw_prefetch);
  EXPECT_TRUE(provider->coordinator().initial_strategy().widen_to_xpline);

  bench_util::WorkloadConfig wl;
  wl.k = 28;
  wl.m = 24;
  wl.block_size = 1024;
  wl.threads = 16;
  wl.total_data_bytes = 16ull << 20;
  const auto ours = bench_util::RunTimed(cfg, wl, *provider);

  const ec::IsalCodec isal(28, 24);
  const auto base = bench_util::RunEncode(cfg, wl, isal);
  EXPECT_GT(ours.gbps, base.gbps);
  EXPECT_LT(ours.media_amplification(), base.media_amplification())
      << "BF mode must reduce PM media read amplification (Fig. 19)";
}

TEST(DialgaTimed, BreakdownFeaturesAreCumulative) {
  // Fig. 18: Vanilla <= +SW <= +SW+HW <= full (allowing small noise).
  simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 8ull << 20;

  auto run = [&](Features f) {
    const DialgaCodec codec(12, 4, ec::SimdWidth::kAvx512, f);
    auto provider = codec.make_encode_provider({12, 4, 1024, 1}, cfg);
    return bench_util::RunTimed(cfg, wl, *provider).gbps;
  };
  const double vanilla = run(Features::vanilla());
  const double sw = run(Features::sw_only());
  const double sw_hw = run(Features::sw_hw());
  const double full = run(Features::all());
  EXPECT_GT(sw, vanilla);
  EXPECT_GT(sw_hw, sw * 0.95);
  EXPECT_GT(full, sw_hw * 0.95);
  EXPECT_GT(full, vanilla * 1.2);
}

TEST(DialgaCodec, NameAndAccessors) {
  const DialgaCodec d(12, 4);
  EXPECT_EQ(d.name(), "DIALGA");
  EXPECT_EQ(d.params().k, 12u);
  EXPECT_TRUE(d.features().buffer_friendly);
  EXPECT_EQ(d.inner().name(), "ISA-L");
}

}  // namespace
}  // namespace dialga
