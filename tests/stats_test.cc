#include "bench_util/stats.h"

#include <gtest/gtest.h>

#include "ec/isal.h"

namespace bench_util {
namespace {

TEST(Stats, SummarizeBasics) {
  const double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Stats s = Summarize(samples);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stdev, 2.138, 1e-3);  // sample stdev
  EXPECT_NEAR(s.cv(), 0.4276, 1e-3);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(Summarize({}).n, 0u);
  const double one[] = {3.5};
  const Stats s = Summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stdev, 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Stats, RepeatedRunsHaveLowVariance) {
  // Different workload seeds shuffle stripe placement; steady-state
  // throughput must be stable (a few percent), like the paper's
  // 10-run averages.
  simmem::SimConfig cfg;
  WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 4 << 20;
  const ec::IsalCodec codec(12, 4);
  const Stats s = RunEncodeRepeated(cfg, wl, codec, 5);
  EXPECT_EQ(s.n, 5u);
  EXPECT_GT(s.mean, 0.0);
  EXPECT_LT(s.cv(), 0.05) << "seed-to-seed variance should be small";
  EXPECT_GT(s.min, 0.9 * s.mean);
}

}  // namespace
}  // namespace bench_util
