// Learned strategy selection (src/dialga/selector.*): online update
// convergence on synthetic rewards, the confidence-margin fallback
// trigger, plan-cache round-trip including corrupt-file rejection, and
// the coordinator-level replay/warm-start contracts of ROADMAP item 1.
#include "dialga/selector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "dialga/coordinator.h"
#include "dialga/registry.h"
#include "integrity/checksum.h"
#include "simmem/address_space.h"
#include "simmem/memory_system.h"

namespace dialga {
namespace {

WindowFeatures SampleFeatures() {
  WindowFeatures f;
  f.k = 12;
  f.m = 4;
  f.block_size = 1024;
  f.nthreads = 4;
  f.latency_ratio = 1.2;
  f.useless_ratio = 2.0;
  f.contention = true;
  f.inefficient = false;
  f.service_load = 0.5;
  return f;
}

/// The CI selector job fans the replay tests out over a seed matrix
/// via DIALGA_SELECTOR_SEED; any seed must replay bit-identically.
std::uint64_t MatrixSeed(std::uint64_t fallback) {
  return EnvUint64("DIALGA_SELECTOR_SEED", fallback, 0,
                   std::numeric_limits<std::uint64_t>::max());
}

std::string TempPath(const char* stem) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dialga_selector_test_") + stem))
      .string();
}

// --- Features ---------------------------------------------------------

TEST(WindowFeatures, VectorIsNormalizedWithBias) {
  const auto x = SampleFeatures().vec();
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  for (const double v : x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(WindowFeatures, ShapeKeyIgnoresTransientPressure) {
  WindowFeatures a = SampleFeatures();
  WindowFeatures b = a;
  b.latency_ratio = 3.9;
  b.useless_ratio = 7.0;
  b.contention = !a.contention;
  b.inefficient = !a.inefficient;
  b.service_load = 0.9;
  // The cache key answers "what did this workload SHAPE converge to";
  // pressure transients right after a phase shift must still hit.
  EXPECT_EQ(a.shape_key(), b.shape_key());

  b.nthreads = a.nthreads + 1;
  EXPECT_NE(a.shape_key(), b.shape_key());
  b = a;
  b.k = a.k + 1;
  EXPECT_NE(a.shape_key(), b.shape_key());
  b = a;
  b.block_size = a.block_size * 2;
  EXPECT_NE(a.shape_key(), b.shape_key());
}

// --- Strategy::from_key round-trip ------------------------------------

TEST(Strategy, KeyRoundTrips) {
  Strategy s;
  s.hw_prefetch = false;
  s.sw_distance = 48;
  s.xpline_first_distance = 52;
  s.widen_to_xpline = true;
  s.sw_tail_offset = 8192;
  EXPECT_EQ(Strategy::from_key(s.key()), s);
  EXPECT_EQ(Strategy::from_key(Strategy{}.key()), Strategy{});
}

// --- Online learning --------------------------------------------------

TEST(StrategySelector, OnlineUpdatesConvergeOnSyntheticRewards) {
  SelectorOptions opts;
  opts.enabled = true;
  opts.min_updates = 1;
  opts.confidence_margin = 0.01;
  StrategySelector sel(opts);

  const WindowFeatures f = SampleFeatures();
  const int good = sel.nearest_candidate(false, 32);
  ASSERT_GE(good, 0);
  // Teach the model: candidate `good` pays +1, everything else -0.5.
  for (int round = 0; round < 40; ++round) {
    for (std::size_t c = 0; c < sel.candidates().size(); ++c) {
      sel.train(f, static_cast<int>(c),
                static_cast<int>(c) == good ? 1.0 : -0.5);
    }
  }
  const SelectorDecision d = sel.decide(f);
  EXPECT_TRUE(d.valid);
  EXPECT_FALSE(d.fallback);
  EXPECT_EQ(d.candidate, good);
  EXPECT_FALSE(d.hw_prefetch);
  EXPECT_EQ(d.sw_distance, 32u);
  EXPECT_GT(d.confidence, opts.confidence_margin);
}

TEST(StrategySelector, ColdModelFallsBackUntilMinUpdates) {
  SelectorOptions opts;
  opts.enabled = true;
  opts.min_updates = 8;
  StrategySelector sel(opts);

  const WindowFeatures f = SampleFeatures();
  // A never-seen feature region (zero updates) must defer to the
  // explorer regardless of margins.
  SelectorDecision d = sel.decide(f);
  EXPECT_TRUE(d.valid);
  EXPECT_TRUE(d.fallback);
  EXPECT_EQ(sel.stats().fallbacks, 1u);

  for (std::uint64_t i = 0; i < opts.min_updates; ++i) sel.train(f, 0, 1.0);
  d = sel.decide(f);
  EXPECT_FALSE(d.fallback) << "trained model with clear margin must predict";
}

TEST(StrategySelector, LowConfidenceMarginTriggersFallback) {
  SelectorOptions opts;
  opts.enabled = true;
  opts.min_updates = 1;
  opts.confidence_margin = 0.5;
  StrategySelector sel(opts);

  const WindowFeatures f = SampleFeatures();
  // Two candidates trained to nearly identical value: margin ~0, well
  // under the 0.5 threshold.
  for (int round = 0; round < 50; ++round) {
    sel.train(f, 0, 0.80);
    sel.train(f, 1, 0.79);
  }
  const SelectorDecision d = sel.decide(f);
  EXPECT_TRUE(d.valid);
  EXPECT_TRUE(d.fallback) << "margin " << sel.stats().last_confidence
                          << " should not clear 0.5";
  EXPECT_LT(sel.stats().last_confidence, 0.5);
  EXPECT_GE(sel.stats().fallbacks, 1u);
}

TEST(StrategySelector, CreditTrainsThePendingEpisode) {
  SelectorOptions opts;
  opts.enabled = true;
  opts.min_updates = 1000;  // stay in fallback; we only exercise credit()
  StrategySelector sel(opts);

  const WindowFeatures f = SampleFeatures();
  Strategy applied;
  applied.hw_prefetch = false;
  applied.sw_distance = 16;

  ASSERT_TRUE(sel.decide(f).fallback);
  sel.note_applied(applied);
  sel.credit(10.0);  // first window defines the shape peak -> reward +1
  EXPECT_EQ(sel.stats().updates, 1u);
  const int cand = sel.nearest_candidate(false, 16);
  EXPECT_GT(sel.score(f, cand), 0.0)
      << "peak window must push the applied candidate's value up";
}

TEST(StrategySelector, DecisionsAreSeedReplayable) {
  // Same seed + same feature/reward sequence => bit-identical decision
  // stream, even with epsilon-greedy exploration enabled.
  const auto run = [] {
    SelectorOptions opts;
    opts.enabled = true;
    opts.min_updates = 1;
    opts.confidence_margin = 0.0;
    opts.explore_epsilon = 0.3;
    opts.seed = MatrixSeed(42);
    StrategySelector sel(opts);
    const WindowFeatures f = SampleFeatures();
    for (int i = 0; i < 8; ++i) {
      sel.train(f, i % 4, i % 2 == 0 ? 0.5 : -0.5);
    }
    std::vector<int> picks;
    for (int i = 0; i < 32; ++i) {
      const SelectorDecision d = sel.decide(f);
      picks.push_back(d.candidate);
      sel.note_applied(Strategy{});
      sel.credit(1.0 + 0.01 * i);
    }
    return picks;
  };
  EXPECT_EQ(run(), run());
}

// --- Plan cache -------------------------------------------------------

TEST(PlanCache, RoundTripsThroughFile) {
  const std::string path = TempPath("roundtrip");
  std::remove(path.c_str());

  PlanCache cache;
  Strategy s;
  s.hw_prefetch = false;
  s.sw_distance = 64;
  cache.insert(0x1234, {s.key(), 0.75});
  cache.insert(0x5678, {Strategy{}.key(), -0.25});
  ASSERT_TRUE(cache.dirty());
  ASSERT_TRUE(cache.flush(path));
  EXPECT_FALSE(cache.dirty());

  PlanCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 2u);
  const PlanCache::Entry* e = loaded.lookup(0x1234);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->strategy_key, s.key());
  EXPECT_DOUBLE_EQ(e->reward, 0.75);
  EXPECT_EQ(loaded.lookup(0x9999), nullptr);
  std::remove(path.c_str());
}

TEST(PlanCache, SerializationIsCanonical) {
  // Insertion order must not leak into the bytes (entries sort by key),
  // so identical contents always produce identical files.
  PlanCache a, b;
  a.insert(1, {10, 0.0});
  a.insert(2, {20, 0.0});
  b.insert(2, {20, 0.0});
  b.insert(1, {10, 0.0});
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(PlanCache, CorruptFileIsRejectedAndIgnored) {
  const std::string path = TempPath("corrupt");
  PlanCache cache;
  cache.insert(0xAB, {Strategy{}.key(), 1.0});
  ASSERT_TRUE(cache.flush(path));

  // Flip one byte in the middle: the CRC-32C trailer must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(18);
    char c;
    f.seekg(18);
    f.get(c);
    f.seekp(18);
    f.put(static_cast<char>(c ^ 0x40));
  }
  PlanCache corrupt;
  EXPECT_FALSE(corrupt.load(path));
  EXPECT_EQ(corrupt.size(), 0u) << "corrupt cache must load empty";

  // Truncated file.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write("DPLC", 4);
  }
  EXPECT_FALSE(corrupt.load(path));
  EXPECT_EQ(corrupt.size(), 0u);

  // Version skew: valid CRC, wrong version.
  {
    PlanCache v;
    v.insert(0xCD, {Strategy{}.key(), 0.5});
    auto bytes = v.serialize();
    bytes[4] ^= 0x01;  // bump version field...
    // ...and re-seal the checksum so only the version mismatches.
    const std::size_t body = bytes.size() - 4;
    const std::uint32_t crc = integrity::Crc32c(bytes.data(), body);
    for (int i = 0; i < 4; ++i) {
      bytes[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    }
    PlanCache skewed;
    EXPECT_FALSE(skewed.deserialize(bytes));
  }
  std::remove(path.c_str());
}

TEST(StrategySelector, WarmCacheSkipsExplorationEntirely) {
  const std::string path = TempPath("warm");
  std::remove(path.c_str());
  const WindowFeatures f = SampleFeatures();
  Strategy converged;
  converged.hw_prefetch = false;
  converged.sw_distance = 48;

  {
    SelectorOptions opts;
    opts.enabled = true;
    opts.plan_cache_path = path;
    StrategySelector sel(opts);
    sel.commit(f, converged);
    // Destructor is the graceful-shutdown flush.
  }

  SelectorOptions warm;
  warm.enabled = true;
  warm.plan_cache_path = path;
  StrategySelector sel(warm);
  for (int i = 0; i < 16; ++i) {
    const SelectorDecision d = sel.decide(f);
    EXPECT_TRUE(d.from_cache);
    EXPECT_FALSE(d.fallback);
    EXPECT_EQ(Strategy::from_key(d.cached.key()), converged);
    sel.note_applied(d.cached);
    sel.credit(5.0);
  }
  EXPECT_EQ(sel.stats().fallbacks, 0u)
      << "a populated plan cache must skip exploration entirely";
  std::remove(path.c_str());
}

TEST(StrategySelector, PeriodicFlushFollowsInjectedClock) {
  const std::string path = TempPath("periodic");
  std::remove(path.c_str());
  std::uint64_t now = 0;

  SelectorOptions opts;
  opts.enabled = true;
  opts.plan_cache_path = path;
  opts.flush_period_ns = 1'000'000;
  opts.time = VirtualTime::Manual(&now);
  StrategySelector sel(opts);

  sel.commit(SampleFeatures(), Strategy{});
  sel.maybe_flush();
  EXPECT_EQ(sel.stats().flushes, 0u) << "period not yet elapsed";
  now += 2'000'000;
  sel.maybe_flush();
  EXPECT_EQ(sel.stats().flushes, 1u);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
}

TEST(StrategySelector, NoLearnFreezesModelAndCache) {
  const std::string path = TempPath("frozen");
  std::remove(path.c_str());
  SelectorOptions opts;
  opts.enabled = true;
  opts.learn = false;
  opts.plan_cache_path = path;
  opts.min_updates = 0;
  {
    StrategySelector sel(opts);
    const WindowFeatures f = SampleFeatures();
    sel.commit(f, Strategy{});  // no-op when frozen
    ASSERT_TRUE(sel.decide(f).fallback ||
                true);  // decide still works; episode below
    sel.note_applied(Strategy{});
    sel.credit(7.0);
    EXPECT_EQ(sel.stats().updates, 0u);
    EXPECT_EQ(sel.plan_cache().size(), 0u);
  }
  EXPECT_FALSE(std::filesystem::exists(path))
      << "--no-learn must never write the cache";
}

// --- Env hardening (satellite: registry Env* helpers) ------------------

TEST(SelectorOptions, FromEnvParsesAndHardens) {
  setenv("DIALGA_PLAN_CACHE", "/tmp/dialga_env_cache", 1);
  setenv("DIALGA_SELECTOR_MARGIN", "0.25", 1);
  setenv("DIALGA_SELECTOR_SEED", "77", 1);
  SelectorOptions opts = SelectorOptions::FromEnv();
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.plan_cache_path, "/tmp/dialga_env_cache");
  EXPECT_DOUBLE_EQ(opts.confidence_margin, 0.25);
  EXPECT_EQ(opts.seed, 77u);

  // Malformed numerics keep the defaults (reject-with-stderr).
  setenv("DIALGA_SELECTOR_MARGIN", "fast", 1);
  setenv("DIALGA_SELECTOR_SEED", "12abc", 1);
  opts = SelectorOptions::FromEnv();
  EXPECT_DOUBLE_EQ(opts.confidence_margin, SelectorOptions{}.confidence_margin);
  EXPECT_EQ(opts.seed, SelectorOptions{}.seed);

  // Out-of-range clamps.
  setenv("DIALGA_SELECTOR_MARGIN", "99", 1);
  opts = SelectorOptions::FromEnv();
  EXPECT_DOUBLE_EQ(opts.confidence_margin, 2.0);

  // Flag hardening: garbage keeps the default, off disables.
  setenv("DIALGA_SELECTOR", "maybe", 1);
  EXPECT_TRUE(SelectorOptions::FromEnv().enabled);
  setenv("DIALGA_SELECTOR", "off", 1);
  EXPECT_FALSE(SelectorOptions::FromEnv().enabled);

  unsetenv("DIALGA_PLAN_CACHE");
  unsetenv("DIALGA_SELECTOR_MARGIN");
  unsetenv("DIALGA_SELECTOR_SEED");
  unsetenv("DIALGA_SELECTOR");
}

// --- Coordinator integration ------------------------------------------

constexpr std::size_t kBuffer = 96 * 1024;

simmem::SimConfig FastSampling() {
  simmem::SimConfig cfg;
  return cfg;
}

TEST(CoordinatorSelector, DefaultConstructionHasNoSelector) {
  const PatternInfo pattern{12, 4, 1024, 1};
  Coordinator c(pattern, Features::all(), Thresholds{}, kBuffer);
  EXPECT_EQ(c.selector(), nullptr);
}

TEST(CoordinatorSelector, DisabledOptionsMatchLegacyInitialStrategy) {
  const PatternInfo pattern{12, 4, 1024, 1};
  Coordinator legacy(pattern, Features::all(), Thresholds{}, kBuffer);
  Coordinator with_opts(pattern, Features::all(), Thresholds{}, kBuffer,
                        SelectorOptions{});
  EXPECT_EQ(legacy.initial_strategy(), with_opts.initial_strategy());
}

TEST(CoordinatorSelector, WarmCacheDecidesFirstStripe) {
  const std::string path = TempPath("coord_warm");
  std::remove(path.c_str());
  const PatternInfo pattern{12, 4, 1024, 1};

  Strategy converged;
  converged.hw_prefetch = false;
  converged.sw_distance = 96;
  {
    WindowFeatures f;
    f.k = pattern.k;
    f.m = pattern.m;
    f.block_size = pattern.block_size;
    f.nthreads = pattern.nthreads;
    SelectorOptions opts;
    opts.enabled = true;
    opts.plan_cache_path = path;
    StrategySelector sel(opts);
    sel.commit(f, converged);
  }

  SelectorOptions opts;
  opts.enabled = true;
  opts.plan_cache_path = path;
  opts.learn = false;
  Coordinator c(pattern, Features::all(), Thresholds{}, kBuffer, opts);
  ASSERT_NE(c.selector(), nullptr);
  // The cached plan must be in force before any sampling happens.
  EXPECT_EQ(c.initial_strategy(), converged);
  EXPECT_EQ(c.selector()->stats().fallbacks, 0u);
  std::remove(path.c_str());
}

TEST(CoordinatorSelector, WindowsAreReplayableFromSeedAndCache) {
  // Two coordinators with identical options, driven through an
  // identical window sequence, must record identical (strategy, source)
  // streams — the "decisions are bit-replayable from (seed, plan-cache
  // state)" acceptance criterion, minus the filesystem.
  const auto run = [] {
    const PatternInfo pattern{12, 4, 1024, 1};
    Thresholds thr;
    thr.sample_interval_ns = 1000.0;
    SelectorOptions opts;
    opts.enabled = true;
    opts.seed = MatrixSeed(9);
    opts.explore_epsilon = 0.25;  // make the seed participate
    opts.min_updates = 4;
    Coordinator c(pattern, Features::all(), thr, kBuffer, opts);
    c.set_record_windows(true);

    simmem::SimConfig cfg = FastSampling();
    simmem::MemorySystem mem(cfg, 1);
    for (int w = 0; w < 24; ++w) {
      for (int i = 0; i < 8; ++i) {
        mem.load(0, simmem::kPmBase + static_cast<std::size_t>(w * 8 + i) *
                                          simmem::kPageBytes);
      }
      mem.advance_to(0, 1500.0 + 1500.0 * w);
      c.strategy(mem);
    }
    std::vector<std::pair<std::uint64_t, int>> out;
    for (const WindowRecord& r : c.windows()) {
      out.emplace_back(r.strategy_key, static_cast<int>(r.source));
    }
    return out;
  };
  const auto a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

}  // namespace
}  // namespace dialga
