// Observability layer: counter exactness under concurrent increments,
// histogram bucketing and percentile estimates on known distributions,
// registry get-or-create identity, scrape-time collectors, and both
// dump formats — the Prometheus text round-trips through a tiny parser
// so a schema drift breaks here before it breaks a real scraper.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, IncrementByN) {
  Counter c;
  c.inc(5);
  c.inc();
  c.inc(0);
  EXPECT_EQ(c.value(), 6u);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.max_of(2.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.max_of(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Gauge, ConcurrentMaxOfKeepsHighWater) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 10000; ++i) {
        g.max_of(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), 39999.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (bounds are inclusive upper edges)
  h.observe(3.0);   // le=4
  h.observe(100.0); // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 104.5);
}

TEST(Histogram, PercentilesOnKnownDistribution) {
  // 100 observations spread uniformly over (0, 100]; bucket width 10.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  // Interpolated estimates land within one bucket width of the truth.
  EXPECT_NEAR(s.percentile(0.50), 50.0, 10.0);
  EXPECT_NEAR(s.percentile(0.95), 95.0, 10.0);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 10.0);
  // Monotone in q.
  EXPECT_LE(s.percentile(0.50), s.percentile(0.95));
  EXPECT_LE(s.percentile(0.95), s.percentile(0.99));
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.5), 0.0);
}

TEST(Histogram, OverflowPercentileReportsLastFiniteBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.99), 2.0);
}

TEST(Bounds, LaddersAreSortedAndPositive) {
  const auto lat = LatencyBounds();
  ASSERT_FALSE(lat.empty());
  EXPECT_GT(lat.front(), 0.0);
  for (std::size_t i = 1; i < lat.size(); ++i) {
    EXPECT_LT(lat[i - 1], lat[i]);
  }
  const auto pow2 = Pow2Bounds(11);
  ASSERT_EQ(pow2.size(), 12u);
  EXPECT_DOUBLE_EQ(pow2.front(), 1.0);
  EXPECT_DOUBLE_EQ(pow2.back(), 2048.0);
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  Registry reg;
  Counter& a = reg.counter("x_total", {{"op", "a"}});
  Counter& b = reg.counter("x_total", {{"op", "a"}});
  Counter& c = reg.counter("x_total", {{"op", "b"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  c.inc(1);
  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);  // sorted: op=a before op=b
  EXPECT_DOUBLE_EQ(samples[1].value, 1.0);
}

TEST(Registry, HelpKeptFromFirstRegistration) {
  Registry reg;
  reg.counter("y_total", {}, "first help");
  reg.counter("y_total", {}, "ignored");
  EXPECT_EQ(reg.help_for("y_total"), "first help");
}

TEST(Registry, CollectorAppendsAndRemoves) {
  Registry reg;
  int owner = 0;
  reg.add_collector(&owner, [](std::vector<Sample>& out) {
    Sample s;
    s.name = "ext_total";
    s.type = MetricType::kCounter;
    s.value = 42.0;
    out.push_back(std::move(s));
  });
  auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "ext_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
  reg.remove_collector(&owner);
  EXPECT_TRUE(reg.collect().empty());
}

TEST(Registry, ConcurrentLookupsAndIncrements) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("hot_total");
      for (int i = 0; i < 50000; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("hot_total").value(), 400000u);
}

/// Tiny Prometheus text parser: enough of the exposition format to
/// round-trip what WriteSamples emits — `name{labels} value` lines plus
/// `# TYPE` / `# HELP` comments.
struct PromParse {
  std::map<std::string, double> values;           // "name{labels}" -> value
  std::map<std::string, std::string> types;       // name -> type
  std::map<std::string, std::string> helps;       // name -> help
  bool ok = true;
};

PromParse ParseProm(const std::string& text) {
  PromParse p;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name, type;
      if (!(ls >> name >> type)) p.ok = false;
      p.types[name] = type;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto sp = rest.find(' ');
      if (sp == std::string::npos) {
        p.ok = false;
        continue;
      }
      p.helps[rest.substr(0, sp)] = rest.substr(sp + 1);
      continue;
    }
    if (line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) {
      p.ok = false;
      continue;
    }
    try {
      p.values[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
    } catch (...) {
      p.ok = false;
    }
  }
  return p;
}

TEST(Dump, PrometheusRoundTripsThroughParser) {
  Registry reg;
  reg.counter("rt_requests_total", {{"op", "encode"}}, "Requests").inc(7);
  reg.counter("rt_requests_total", {{"op", "decode"}}).inc(2);
  reg.gauge("rt_depth", {}, "Queue depth").set(3.5);
  Histogram& h = reg.histogram("rt_latency_seconds", {0.1, 1.0}, {}, "Lat");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  std::ostringstream os;
  DumpMetrics(os, Format::kPrometheus, reg);
  const PromParse p = ParseProm(os.str());
  ASSERT_TRUE(p.ok) << os.str();

  EXPECT_DOUBLE_EQ(p.values.at("rt_requests_total{op=\"encode\"}"), 7.0);
  EXPECT_DOUBLE_EQ(p.values.at("rt_requests_total{op=\"decode\"}"), 2.0);
  EXPECT_DOUBLE_EQ(p.values.at("rt_depth"), 3.5);
  EXPECT_EQ(p.types.at("rt_requests_total"), "counter");
  EXPECT_EQ(p.types.at("rt_depth"), "gauge");
  EXPECT_EQ(p.types.at("rt_latency_seconds"), "histogram");
  EXPECT_EQ(p.helps.at("rt_requests_total"), "Requests");

  // Histogram exposition: cumulative buckets, +Inf == count, sum.
  EXPECT_DOUBLE_EQ(p.values.at("rt_latency_seconds_bucket{le=\"0.1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(p.values.at("rt_latency_seconds_bucket{le=\"1\"}"), 2.0);
  EXPECT_DOUBLE_EQ(p.values.at("rt_latency_seconds_bucket{le=\"+Inf\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(p.values.at("rt_latency_seconds_count"), 3.0);
  EXPECT_NEAR(p.values.at("rt_latency_seconds_sum"), 5.55, 1e-9);
}

TEST(Dump, PrometheusEscapesLabelValues) {
  Registry reg;
  reg.counter("esc_total", {{"site", "a\"b\\c\nd"}}).inc();
  std::ostringstream os;
  DumpMetrics(os, Format::kPrometheus, reg);
  EXPECT_NE(os.str().find("site=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << os.str();
}

TEST(Dump, JsonLinesOneObjectPerLine) {
  Registry reg;
  reg.counter("jl_total", {{"op", "x"}}, "help").inc(4);
  Histogram& h = reg.histogram("jl_hist", {1.0, 2.0});
  h.observe(1.5);
  std::ostringstream os;
  DumpMetrics(os, Format::kJsonLines, reg);
  const std::string text = os.str();
  std::istringstream is(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"name\":\"jl_total\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":4"), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_NE(text.find("\"le\":\"+Inf\""), std::string::npos);
}

TEST(Tracer, LifecycleSpansRecordStageTimes) {
  Tracer tr;
  tr.set_enabled(true);
  const std::uint64_t id = tr.begin("encode", 8, 3, 4096);
  ASSERT_NE(id, 0u);
  tr.event(id, Stage::kQueue);
  tr.event(id, Stage::kBatch);
  tr.event(id, Stage::kExec);
  tr.annotate(id, "note-1");
  tr.finish(id, "ok");
  const auto spans = tr.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const StripeSpan& s = spans[0];
  EXPECT_EQ(s.op, "encode");
  EXPECT_EQ(s.k, 8u);
  EXPECT_EQ(s.status, "ok");
  EXPECT_EQ(s.note, "note-1");
  EXPECT_GE(s.queue_s, 0.0);
  EXPECT_LE(s.queue_s, s.batch_s);
  EXPECT_LE(s.batch_s, s.exec_s);
  EXPECT_LE(s.exec_s, s.total_s);
}

TEST(Tracer, DisabledCostsNothingAndIdZeroNoOps) {
  Tracer tr;
  EXPECT_FALSE(tr.enabled());
  EXPECT_EQ(tr.begin("encode", 4, 2, 1024), 0u);
  tr.event(0, Stage::kQueue);  // must not crash or record
  tr.annotate(0, "x");
  tr.finish(0, "ok");
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, SamplingTracesEveryNth) {
  Tracer tr;
  tr.set_enabled(true);
  tr.set_sample_every(3);
  std::size_t traced = 0;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t id = tr.begin("encode", 4, 2, 1024);
    if (id != 0) {
      ++traced;
      tr.finish(id, "ok");
    }
  }
  EXPECT_EQ(traced, 3u);
}

TEST(Tracer, RingEvictsOldestAndCountsDropped) {
  Tracer tr;
  tr.set_enabled(true);
  tr.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t id = tr.begin("encode", 4, 2, 1024);
    tr.finish(id, "ok");
  }
  EXPECT_EQ(tr.snapshot().size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
}

TEST(Tracer, DumpJsonlEmitsOneLinePerSpan) {
  Tracer tr;
  tr.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t id = tr.begin("decode", 4, 2, 1024);
    tr.event(id, Stage::kQueue);
    tr.finish(id, "ok");
  }
  std::ostringstream os;
  tr.dump_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    EXPECT_NE(line.find("\"span\":\"stripe\""), std::string::npos);
    EXPECT_NE(line.find("\"op\":\"decode\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(Global, RegistryAndTracerAreStableSingletons) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
  EXPECT_EQ(&Tracer::Global(), &Tracer::Global());
}

}  // namespace
}  // namespace obs
