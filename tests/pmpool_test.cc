#include "pmpool/pool.h"

#include <gtest/gtest.h>

#include <random>

namespace pmpool {
namespace {

std::vector<std::byte> RandomBytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng());
  return v;
}

TEST(Pool, PutGetRoundTrip) {
  Pool pool;
  const auto small = RandomBytes(100, 1);
  const auto exact = RandomBytes(pool.config().stripe_payload(), 2);
  const auto big = RandomBytes(3 * pool.config().stripe_payload() + 7, 3);
  const auto id1 = pool.put(small);
  const auto id2 = pool.put(exact);
  const auto id3 = pool.put(big);
  EXPECT_EQ(pool.get(id1), small);
  EXPECT_EQ(pool.get(id2), exact);
  EXPECT_EQ(pool.get(id3), big);
  EXPECT_FALSE(pool.get(999).has_value());
}

TEST(Pool, StatsTrackUsage) {
  PoolConfig cfg;
  cfg.k = 4;
  cfg.m = 2;
  cfg.block_size = 256;
  Pool pool(cfg);
  pool.put(RandomBytes(1000, 4));  // 1000 B -> 1 stripe (1024 payload)
  pool.put(RandomBytes(1100, 5));  // -> 2 stripes
  const PoolStats st = pool.stats();
  EXPECT_EQ(st.objects, 2u);
  EXPECT_EQ(st.stripes, 3u);
  EXPECT_EQ(st.payload_bytes, 2100u);
  EXPECT_EQ(st.pm_bytes, 3u * 6u * 256u);
  EXPECT_GT(st.storage_overhead(), 1.5);  // (k+m)/k = 1.5 plus padding
}

TEST(Pool, ScrubRepairsWithinTolerance) {
  PoolConfig cfg;
  cfg.k = 6;
  cfg.m = 2;
  cfg.block_size = 512;
  Pool pool(cfg);
  const auto value = RandomBytes(2 * cfg.stripe_payload(), 6);
  const auto id = pool.put(value);

  pool.inject_fault(id, 0, 1, 100);   // data block, stripe 0
  pool.inject_fault(id, 0, 7, 0);     // parity block, stripe 0
  pool.inject_fault(id, 1, 3, 511);   // data block, stripe 1

  const ScrubReport report = pool.scrub();
  EXPECT_EQ(report.blocks_damaged, 3u);
  EXPECT_EQ(report.blocks_repaired, 3u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.objects_lost, 0u);
  EXPECT_EQ(pool.get(id), value);

  // A second scrub finds nothing.
  const ScrubReport again = pool.scrub();
  EXPECT_EQ(again.blocks_damaged, 0u);
}

TEST(Pool, ScrubReportsLossBeyondTolerance) {
  PoolConfig cfg;
  cfg.k = 4;
  cfg.m = 2;
  cfg.block_size = 256;
  Pool pool(cfg);
  const auto id = pool.put(RandomBytes(500, 7));
  pool.inject_fault(id, 0, 0, 1);
  pool.inject_fault(id, 0, 1, 1);
  pool.inject_fault(id, 0, 2, 1);
  const ScrubReport report = pool.scrub();
  EXPECT_EQ(report.blocks_damaged, 3u);
  EXPECT_EQ(report.blocks_repaired, 0u);
  EXPECT_EQ(report.objects_lost, 1u);
  EXPECT_FALSE(report.clean());
}

TEST(Pool, UpdateRewritesRangeAndParity) {
  PoolConfig cfg;
  cfg.k = 4;
  cfg.m = 2;
  cfg.block_size = 512;
  Pool pool(cfg);
  auto value = RandomBytes(2 * cfg.stripe_payload(), 8);
  const auto id = pool.put(value);

  // Overwrite a range spanning a block boundary and a stripe boundary.
  const auto patch = RandomBytes(1500, 9);
  const std::size_t at = cfg.stripe_payload() - 700;
  ASSERT_TRUE(pool.update(id, at, patch));
  std::copy(patch.begin(), patch.end(), value.begin() + at);
  EXPECT_EQ(pool.get(id), value);

  // Parity must still be consistent: damage the updated region's data
  // block and scrub-repair it back to the NEW contents.
  pool.inject_fault(id, 1, 0, 10);
  EXPECT_TRUE(pool.scrub().clean());
  EXPECT_EQ(pool.get(id), value);
}

TEST(Pool, UpdateRejectsOutOfRange) {
  Pool pool;
  const auto id = pool.put(RandomBytes(100, 10));
  const auto patch = RandomBytes(10, 11);
  EXPECT_FALSE(pool.update(id, 95, patch));  // would grow the object
  EXPECT_FALSE(pool.update(id + 1, 0, patch));
  EXPECT_TRUE(pool.update(id, 90, patch));
}

TEST(Pool, ManyObjectsIndependent) {
  PoolConfig cfg;
  cfg.k = 4;
  cfg.m = 2;
  cfg.block_size = 256;
  Pool pool(cfg);
  std::vector<std::pair<Pool::ObjectId, std::vector<std::byte>>> stored;
  for (int i = 0; i < 32; ++i) {
    auto v = RandomBytes(50 + i * 37, 100 + i);
    stored.emplace_back(pool.put(v), std::move(v));
  }
  // Damage one object; others must be untouched.
  pool.inject_fault(stored[10].first, 0, 2, 5);
  ASSERT_TRUE(pool.scrub().clean());
  for (const auto& [id, v] : stored) {
    EXPECT_EQ(pool.get(id), v) << "object " << id;
  }
}

}  // namespace
}  // namespace pmpool
