// Seeded chaos harness: drives the service, shard store, PM pool, and
// repair pipeline under deterministic fault-injection schedules and
// checks the robustness invariants the subsystems advertise:
//
//   * no crash/UB (the whole binary runs under ASan/UBSan/TSan in CI),
//   * every submitted future resolves exactly once with a terminal
//     status,
//   * output is either bit-correct or explicitly flagged (damaged /
//     errno / degradation report) — never silently wrong.
//
// Each test loops the fixed seeds 1..8; the CHAOS_SEED environment
// variable narrows a run to one seed so CI can fan the seeds out as a
// matrix without rebuilding.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dialga/dialga.h"
#include "ec/isal.h"
#include "ec/parallel.h"
#include "fault/injector.h"
#include "pmpool/pool.h"
#include "repair/rebuild.h"
#include "shard/shard_store.h"
#include "svc/stripe_service.h"

namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::vector<std::uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

/// Installs a schedule for one seed and guarantees the global injector
/// is clean afterwards, whatever the test body does.
class ChaosSchedule {
 public:
  explicit ChaosSchedule(std::uint64_t seed) {
    fault::Injector::Global().clear();
    fault::Injector::Global().set_seed(seed);
  }
  ~ChaosSchedule() { fault::Injector::Global().clear(); }
  ChaosSchedule(const ChaosSchedule&) = delete;
  ChaosSchedule& operator=(const ChaosSchedule&) = delete;

  void site(const std::string& name, double p, int err = EIO) {
    fault::SitePlan plan;
    plan.probability = p;
    plan.error = err;
    fault::Injector::Global().install(name, plan);
  }
};

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::Global().clear(); }
};

// ---------------------------------------------------------------------------
// Service: admission faults + codec faults + per-request deadlines.

TEST_F(ChaosTest, ServiceFuturesAllResolveAndOkStripesAreBitCorrect) {
  const std::size_t k = 4, m = 2, bs = 512, stripes = 48;
  const ec::IsalCodec codec(k, m);

  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosSchedule sched(seed);
    sched.site("svc.admission", 0.10);
    sched.site("svc.codec", 0.05);

    // Stripe buffers + a serial reference encode of the same data.
    std::vector<std::vector<std::byte>> blocks(stripes * (k + m));
    std::vector<std::vector<std::byte>> reference(stripes * m);
    std::mt19937_64 rng(seed);
    for (std::size_t s = 0; s < stripes; ++s) {
      std::vector<const std::byte*> data;
      std::vector<std::byte*> ref;
      for (std::size_t i = 0; i < k + m; ++i) {
        auto& b = blocks[s * (k + m) + i];
        b.resize(bs);
        if (i < k) {
          for (auto& x : b) x = static_cast<std::byte>(rng());
          data.push_back(b.data());
        }
      }
      for (std::size_t j = 0; j < m; ++j) {
        reference[s * m + j].resize(bs);
        ref.push_back(reference[s * m + j].data());
      }
      codec.encode(bs, data, ref);
    }

    svc::StripeService::Config cfg;
    cfg.queue_capacity = 16;  // small: admission faults + real pressure
    cfg.pool_threads = 2;
    svc::StripeService service(std::move(cfg));

    std::vector<std::future<svc::Result>> futures;
    for (std::size_t s = 0; s < stripes; ++s) {
      svc::EncodeRequest req;
      req.shape = {k, m, bs};
      req.codec = &codec;
      req.timeout = 2s;  // generous: exercises the deadline plumbing
      for (std::size_t i = 0; i < k; ++i) {
        req.data.push_back(blocks[s * (k + m) + i].data());
      }
      for (std::size_t j = 0; j < m; ++j) {
        req.parity.push_back(blocks[s * (k + m) + k + j].data());
      }
      futures.push_back(service.submit(std::move(req)));
    }

    std::size_t ok = 0, flagged = 0;
    for (std::size_t s = 0; s < stripes; ++s) {
      // Every future resolves (get() would block forever otherwise and
      // the ctest timeout would flag it).
      const svc::Result r = futures[s].get();
      switch (r.status) {
        case svc::StatusCode::kOk:
          ++ok;
          for (std::size_t j = 0; j < m; ++j) {
            EXPECT_EQ(std::memcmp(blocks[s * (k + m) + k + j].data(),
                                  reference[s * m + j].data(), bs),
                      0)
                << "stripe " << s << " parity " << j;
          }
          break;
        case svc::StatusCode::kRejectedQueueFull:
        case svc::StatusCode::kRejectedClassLimit:
        case svc::StatusCode::kCodecError:
        case svc::StatusCode::kDeadlineExceeded:
          ++flagged;  // explicitly flagged, never silently wrong
          break;
        default:
          ADD_FAILURE() << "unexpected status "
                        << svc::to_string(r.status);
      }
    }
    service.shutdown();
    EXPECT_EQ(ok + flagged, stripes);

    const svc::ServiceStats st = service.stats();
    EXPECT_EQ(st.completed_ok, ok);
    // The injector consulted both sites (plans with p=0.1/0.05 over 48
    // admissions virtually always fire at least once, but `ops` alone
    // is interleaving-proof).
    EXPECT_EQ(fault::Injector::Global().stats("svc.admission").ops,
              stripes);
  }
}

TEST_F(ChaosTest, ServiceExpiresQueuedRequestsPastTheirDeadline) {
  // A zero-ish deadline with a stalled dispatcher is hard to arrange
  // deterministically; instead submit with a deadline already expired
  // at admission and check the explicit kDeadlineExceeded flagging.
  const std::size_t k = 4, m = 2, bs = 256;
  const ec::IsalCodec codec(k, m);
  std::vector<std::vector<std::byte>> blocks(k + m);
  svc::EncodeRequest req;
  req.shape = {k, m, bs};
  req.codec = &codec;
  req.timeout = -1ns;  // deadline in the past
  for (std::size_t i = 0; i < k + m; ++i) {
    blocks[i].resize(bs, std::byte{0x5a});
    if (i < k) req.data.push_back(blocks[i].data());
  }
  for (std::size_t j = 0; j < m; ++j) {
    req.parity.push_back(blocks[k + j].data());
  }

  svc::StripeService service;
  const svc::Result r = service.submit(std::move(req)).get();
  EXPECT_EQ(r.status, svc::StatusCode::kDeadlineExceeded);
  service.shutdown();
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

// ---------------------------------------------------------------------------
// Shard store: file roundtrip under I/O faults.

class ChaosShardTest : public ChaosTest {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dialga_chaos_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ChaosTest::TearDown();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(ChaosShardTest, FileRoundtripIsBitCorrectOrExplicitlyFlagged) {
  const dialga::DialgaCodec codec(4, 2);

  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const fs::path input = dir_ / ("in_" + std::to_string(seed));
    const fs::path shards = dir_ / ("sh_" + std::to_string(seed));
    const fs::path output = dir_ / ("out_" + std::to_string(seed));

    std::vector<char> payload(9000 + seed * 17);
    std::mt19937_64 rng(seed);
    for (auto& c : payload) c = static_cast<char>(rng());
    std::ofstream(input, std::ios::binary)
        .write(payload.data(),
               static_cast<std::streamsize>(payload.size()));

    ChaosSchedule sched(seed);
    sched.site("shard.open", 0.02);
    sched.site("shard.read", 0.05, EINTR);  // transient: the retry path
    sched.site("shard.short_read", 0.05);
    sched.site("shard.write", 0.02);

    shard::ShardStore store(codec, /*block_size=*/512);
    shard::ServicePolicy policy;
    policy.retry.max_retries = 2;
    policy.retry.base_delay = 50us;
    policy.retry.max_delay = 200us;
    store.set_service_policy(policy);

    const shard::Status enc = store.encode_file(input, shards);
    if (!enc.ok()) {
      // Injected open/write/read failures surface as errno-carrying
      // statuses (exhausted transient retries get their own kind),
      // never as silent truncation.
      EXPECT_TRUE(enc.kind == shard::Status::Kind::kIoError ||
                  enc.kind == shard::Status::Kind::kRetryExhausted)
          << enc.message();
      EXPECT_NE(enc.error, 0);
      continue;
    }

    const shard::Status dec = store.decode_file(shards, output);
    if (dec.ok()) {
      std::ifstream in(output, std::ios::binary | std::ios::ate);
      std::vector<char> got(static_cast<std::size_t>(in.tellg()));
      in.seekg(0);
      in.read(got.data(), static_cast<std::streamsize>(got.size()));
      EXPECT_EQ(got, payload);  // success must mean bit-identical
    } else {
      // Short reads masquerade as damaged shards (repaired via parity
      // when few enough); open faults as I/O errors; EINTR outlasting
      // the budget as retry exhaustion. All explicitly flagged.
      EXPECT_TRUE(dec.kind == shard::Status::Kind::kIoError ||
                  dec.kind == shard::Status::Kind::kDamaged ||
                  dec.kind == shard::Status::Kind::kRetryExhausted)
          << dec.message();
    }
  }
}

TEST_F(ChaosShardTest, CrashConsistentEncodeNeverTearsTheManifest) {
  // The durable-write contract under mid-encode faults: a failed
  // re-encode over an existing shard directory leaves the OLD manifest
  // (gen 1) in place, and any gen-2 shard files that did land before
  // the failure read as checksum damage against it — which parity
  // absorbs or flags, never silently mixes. Decode must therefore
  // return exactly generation 1, exactly generation 2, or an explicit
  // error; a torn manifest or a blended output is a failure.
  const dialga::DialgaCodec codec(4, 2);

  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const fs::path in1 = dir_ / ("cc1_" + std::to_string(seed));
    const fs::path in2 = dir_ / ("cc2_" + std::to_string(seed));
    const fs::path shards = dir_ / ("ccsh_" + std::to_string(seed));
    const fs::path output = dir_ / ("ccout_" + std::to_string(seed));

    std::mt19937_64 rng(seed);
    std::vector<char> gen1(9000), gen2(13000);
    for (auto& c : gen1) c = static_cast<char>(rng());
    for (auto& c : gen2) c = static_cast<char>(rng());
    std::ofstream(in1, std::ios::binary)
        .write(gen1.data(), static_cast<std::streamsize>(gen1.size()));
    std::ofstream(in2, std::ios::binary)
        .write(gen2.data(), static_cast<std::streamsize>(gen2.size()));

    shard::ShardStore store(codec, /*block_size=*/512);
    ASSERT_TRUE(store.encode_file(in1, shards));  // clean generation 1

    {
      ChaosSchedule sched(seed);
      sched.site("shard.write", 0.30);
      sched.site("aio.submit", 0.20);  // consulted on the uring backend
      const shard::Status st = store.encode_file(in2, shards);
      if (!st.ok()) {
        EXPECT_TRUE(st.kind == shard::Status::Kind::kIoError ||
                    st.kind == shard::Status::Kind::kRetryExhausted)
            << st.message();
      }
    }

    // Whatever happened, the manifest on disk parses and names one of
    // the two generations — rename(2) gives old-or-new, never torn.
    std::ifstream mf_in(shards / "manifest.txt", std::ios::binary);
    ASSERT_TRUE(mf_in.is_open());
    std::string text((std::istreambuf_iterator<char>(mf_in)),
                     std::istreambuf_iterator<char>());
    const auto mf = shard::Manifest::parse(text);
    ASSERT_TRUE(mf.has_value()) << "torn manifest";
    ASSERT_TRUE(mf->file_size == gen1.size() ||
                mf->file_size == gen2.size())
        << "manifest names a size from neither generation: "
        << mf->file_size;

    // With faults cleared, decode returns the generation the manifest
    // names bit-exactly, or flags damage beyond parity explicitly.
    const shard::Status dec = store.decode_file(shards, output);
    if (dec.ok()) {
      std::ifstream in(output, std::ios::binary | std::ios::ate);
      std::vector<char> got(static_cast<std::size_t>(in.tellg()));
      in.seekg(0);
      in.read(got.data(), static_cast<std::streamsize>(got.size()));
      EXPECT_TRUE(got == (mf->file_size == gen1.size() ? gen1 : gen2))
          << "decode blended generations";
    } else {
      EXPECT_EQ(dec.kind, shard::Status::Kind::kDamaged) << dec.message();
    }
  }
}

TEST_F(ChaosShardTest, EncodeSurvivesInputGrowingAndShrinkingMidRead) {
  // A mutator thread rewrites the input (grow, shrink, overwrite)
  // while encode_file loops. Every attempt must either succeed or fail
  // explicitly (a shrink mid-scatter is an explicit short read, never
  // a mis-sized buffer); every success must decode to a self-consistent
  // file of exactly the size its manifest recorded.
  const dialga::DialgaCodec codec(4, 2);
  shard::ShardStore store(codec, /*block_size=*/512);

  const fs::path input = dir_ / "torture_in";
  const auto rewrite = [&](std::size_t bytes, char fill) {
    std::ofstream out(input, std::ios::binary | std::ios::trunc);
    std::vector<char> data(bytes, fill);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };
  rewrite(64 * 1024, 'a');

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    std::mt19937_64 rng(99);
    while (!stop.load()) {
      const std::size_t size = 1024 + rng() % (128 * 1024);
      rewrite(size, static_cast<char>('a' + rng() % 26));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::size_t ok_rounds = 0;
  for (int round = 0; round < 12; ++round) {
    const fs::path shards = dir_ / ("tsh_" + std::to_string(round));
    const fs::path output = dir_ / ("tout_" + std::to_string(round));
    const shard::Status enc = store.encode_file(input, shards);
    if (!enc.ok()) {
      EXPECT_TRUE(enc.kind == shard::Status::Kind::kIoError ||
                  enc.kind == shard::Status::Kind::kRetryExhausted)
          << enc.message();
      continue;
    }
    ++ok_rounds;
    std::ifstream mf_in(shards / "manifest.txt", std::ios::binary);
    EXPECT_TRUE(mf_in.is_open());
    std::string text((std::istreambuf_iterator<char>(mf_in)),
                     std::istreambuf_iterator<char>());
    const auto mf = shard::Manifest::parse(text);
    EXPECT_TRUE(mf.has_value());
    const shard::Status dec = store.decode_file(shards, output);
    EXPECT_TRUE(dec.ok()) << dec.message();
    if (dec.ok() && mf) {
      EXPECT_EQ(fs::file_size(output), mf->file_size)
          << "decode size disagrees with the manifest";
    }
  }
  stop.store(true);
  mutator.join();
  // The loop must make progress: rewrites are brief, so at least one
  // round catches a stable file.
  EXPECT_GT(ok_rounds, 0u);
}

// ---------------------------------------------------------------------------
// PM pool: allocation faults with all-or-nothing rollback.

TEST_F(ChaosTest, PoolPutRollsBackCleanlyUnderAllocationFaults) {
  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosSchedule sched(seed);
    sched.site("pmpool.alloc", 0.25);

    pmpool::PoolConfig cfg;
    cfg.k = 4;
    cfg.m = 2;
    cfg.block_size = 256;
    pmpool::Pool pool(cfg);

    std::mt19937_64 rng(seed);
    std::vector<std::pair<pmpool::Pool::ObjectId, std::vector<std::byte>>>
        stored;
    std::size_t expect_stripes = 0, expect_payload = 0, failed = 0;
    for (int i = 0; i < 30; ++i) {
      // Sizes straddle stripe boundaries so multi-stripe puts exercise
      // the partial-carve rollback.
      const std::size_t size = 1 + rng() % (3 * cfg.stripe_payload());
      std::vector<std::byte> value(size);
      for (auto& b : value) b = static_cast<std::byte>(rng());
      const auto id = pool.try_put(value);
      if (!id) {
        ++failed;
        continue;
      }
      expect_stripes += (size + cfg.stripe_payload() - 1) /
                        cfg.stripe_payload();
      expect_payload += size;
      stored.emplace_back(*id, std::move(value));
    }
    // p=0.25 per stripe allocation over ~60 allocations: every seed
    // sees both outcomes.
    EXPECT_GT(failed, 0u);
    EXPECT_GT(stored.size(), 0u);

    // Rollback must leave no trace: stats add up to the successes only.
    const pmpool::PoolStats st = pool.stats();
    EXPECT_EQ(st.objects, stored.size());
    EXPECT_EQ(st.stripes, expect_stripes);
    EXPECT_EQ(st.payload_bytes, expect_payload);

    fault::Injector::Global().clear();
    for (const auto& [id, value] : stored) {
      const auto got = pool.get(id);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, value);
    }
    // No half-carved stripe left behind for the scrubber to trip on.
    const pmpool::ScrubReport scrub = pool.scrub();
    EXPECT_TRUE(scrub.clean());
    EXPECT_EQ(scrub.blocks_damaged, 0u);
    EXPECT_EQ(scrub.objects_lost, 0u);
  }
}

// ---------------------------------------------------------------------------
// Repair: scrub and rebuild degrade with a report instead of aborting.

TEST_F(ChaosTest, ScrubRetriesInjectedFailuresAndReportsLeftovers) {
  const std::size_t k = 4, m = 2, bs = 512, stripes = 24;
  const ec::IsalCodec codec(k, m);

  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));

    // Valid stripes, one erased block each, decode jobs over them.
    std::vector<std::vector<std::byte>> blocks(stripes * (k + m));
    std::vector<std::vector<std::byte*>> ptrs(stripes);
    std::mt19937_64 rng(seed);
    for (std::size_t s = 0; s < stripes; ++s) {
      std::vector<const std::byte*> data;
      std::vector<std::byte*> parity;
      for (std::size_t i = 0; i < k + m; ++i) {
        auto& b = blocks[s * (k + m) + i];
        b.resize(bs);
        if (i < k) {
          for (auto& x : b) x = static_cast<std::byte>(rng());
          data.push_back(b.data());
        } else {
          parity.push_back(b.data());
        }
        ptrs[s].push_back(b.data());
      }
      codec.encode(bs, data, parity);
    }
    const std::size_t erased = seed % (k + m);
    const std::vector<std::size_t> erasures{erased};
    std::vector<ec::DecodeJob> jobs(stripes);
    for (std::size_t s = 0; s < stripes; ++s) {
      std::fill(blocks[s * (k + m) + erased].begin(),
                blocks[s * (k + m) + erased].end(), std::byte{0});
      jobs[s] = {ptrs[s], erasures};
    }

    const auto run = [&] {
      fault::Injector::Global().clear();
      fault::Injector::Global().set_seed(seed);
      fault::SitePlan plan;
      plan.probability = 0.2;
      fault::Injector::Global().install("repair.scrub", plan);
      return repair::ScrubStripes(codec, bs, jobs, /*threads=*/2,
                                  /*max_retries=*/3);
    };
    const repair::ScrubReport report = run();

    EXPECT_EQ(report.stripes, stripes);
    EXPECT_LE(report.retry_rounds, 3u);
    EXPECT_GE(report.attempts, stripes);
    for (const std::size_t idx : report.unrecovered) {
      EXPECT_LT(idx, stripes);
    }
    EXPECT_EQ(report.clean(), report.unrecovered.empty());
    // Only injected failures here, so the real decodes all succeeded —
    // every recovered stripe must hold the reconstructed block.
    const std::set<std::size_t> bad(report.unrecovered.begin(),
                                    report.unrecovered.end());
    std::mt19937_64 check(seed);
    for (std::size_t s = 0; s < stripes; ++s) {
      for (std::size_t i = 0; i < k + m; ++i) {
        std::vector<std::byte> expect(bs);
        for (auto& x : expect) {
          if (i < k) x = static_cast<std::byte>(check());
        }
        if (i >= k) continue;  // parity regenerated below via content
        if (i == erased && bad.count(s)) continue;
        EXPECT_EQ(std::memcmp(blocks[s * (k + m) + i].data(),
                              expect.data(), bs),
                  0)
            << "stripe " << s << " block " << i;
      }
    }

    // Determinism: the identical seed replays the identical report.
    const repair::ScrubReport replay = run();
    EXPECT_EQ(replay.unrecovered, report.unrecovered);
    EXPECT_EQ(replay.attempts, report.attempts);
    EXPECT_EQ(replay.retry_rounds, report.retry_rounds);
  }
}

TEST_F(ChaosTest, RebuildSkipsStripesOnlyAfterRetriesAndReportsThem) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig sim_cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 8;
  wl.m = 3;
  wl.block_size = 1024;
  wl.total_data_bytes = 512 << 10;  // 64 stripes

  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosSchedule sched(seed);
    fault::SitePlan plan;
    plan.probability = 0.3;
    fault::Injector::Global().install("repair.rebuild", plan);

    repair::RebuildConfig rc;
    rc.threads = 2;
    rc.batch_stripes = 16;
    rc.max_stripe_retries = 2;
    const repair::RebuildProgress p =
        repair::RunRebuild(codec, sim_cfg, wl, /*failed_block=*/1, rc);

    EXPECT_EQ(p.stripes_done, p.stripes_total);
    EXPECT_EQ(p.stripes_total, 64u);
    // Attempts = one per stripe + one per retried stripe per round.
    EXPECT_GE(p.degraded.attempts, p.stripes_total);
    // Every skipped stripe is a valid ordinal, reported once, and was
    // retried first.
    std::set<std::size_t> uniq(p.degraded.skipped.begin(),
                               p.degraded.skipped.end());
    EXPECT_EQ(uniq.size(), p.degraded.skipped.size());
    for (const std::size_t ord : p.degraded.skipped) {
      EXPECT_LT(ord, p.stripes_total);
    }
    EXPECT_LE(p.degraded.skipped.size(), p.degraded.retried);
    EXPECT_EQ(p.degraded.complete(), p.degraded.skipped.empty());
    // p=0.3 over 64 stripes: some always fail the first pass, and the
    // retry rounds always rescue at least one.
    EXPECT_GT(p.degraded.retried, 0u);
    EXPECT_LT(p.degraded.skipped.size(), p.degraded.retried);
  }
}

// ---------------------------------------------------------------------------
// Empty plan: the instrumented paths cost nothing and count nothing.

TEST_F(ChaosTest, EmptyPlanRunsCleanWithZeroFaultCounters) {
  fault::Injector::Global().clear();
  ASSERT_FALSE(fault::Injector::Global().active());

  const std::size_t k = 4, m = 2, bs = 256;
  const ec::IsalCodec codec(k, m);
  std::vector<std::vector<std::byte>> blocks(k + m);
  svc::EncodeRequest req;
  req.shape = {k, m, bs};
  req.codec = &codec;
  for (std::size_t i = 0; i < k + m; ++i) {
    blocks[i].resize(bs, std::byte{0x3c});
    if (i < k) req.data.push_back(blocks[i].data());
  }
  for (std::size_t j = 0; j < m; ++j) {
    req.parity.push_back(blocks[k + j].data());
  }
  svc::StripeService service;
  EXPECT_EQ(service.submit(std::move(req)).get().status,
            svc::StatusCode::kOk);
  service.shutdown();

  pmpool::Pool pool;
  const std::vector<std::byte> value(1000, std::byte{0x77});
  const auto id = pool.try_put(value);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(pool.get(*id), value);
  EXPECT_TRUE(pool.scrub().clean());

  // Nothing consulted the injector, nothing fired.
  EXPECT_FALSE(fault::Injector::Global().active());
  EXPECT_TRUE(fault::Injector::Global().all_stats().empty());
}

}  // namespace
