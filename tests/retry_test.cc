// RetryPolicy backoff schedule: exponential growth, the max_delay cap,
// jitter bounds and determinism, and the ≥1 µs floor that keeps a
// zero/rounded-down base from degenerating into a busy spin.
#include <gtest/gtest.h>

#include <chrono>

#include "svc/retry.h"

namespace svc {
namespace {

using std::chrono::microseconds;

TEST(RetryPolicy, DelayGrowsExponentiallyWithinJitterBounds) {
  RetryPolicy p;
  p.base_delay = microseconds(100);
  p.max_delay = microseconds(1000000);
  p.seed = 42;
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    const auto d = p.delay(attempt);
    const auto step = 100ll << attempt;  // pre-jitter
    // Jitter scales by [0.5, 1.0]; integer truncation can shave 1 µs.
    EXPECT_GE(d.count(), step / 2 - 1) << "attempt " << attempt;
    EXPECT_LE(d.count(), step) << "attempt " << attempt;
  }
}

TEST(RetryPolicy, DelayIsCappedAtMaxDelay) {
  RetryPolicy p;
  p.base_delay = microseconds(100);
  p.max_delay = microseconds(800);
  for (std::size_t attempt = 0; attempt < 40; ++attempt) {
    EXPECT_LE(p.delay(attempt).count(), 800) << "attempt " << attempt;
  }
  // Far past the cap the pre-jitter step is pinned at max_delay, so the
  // delay still lands in [max/2, max].
  EXPECT_GE(p.delay(30).count(), 400 - 1);
}

TEST(RetryPolicy, ZeroBaseDelayStillBacksOff) {
  // base_delay == 0 used to double into 0 forever: every retry fired
  // immediately, busy-spinning against the saturated service.
  RetryPolicy p;
  p.base_delay = microseconds(0);
  p.max_delay = microseconds(10000);
  for (std::size_t attempt = 0; attempt < 20; ++attempt) {
    EXPECT_GE(p.delay(attempt).count(), 1) << "attempt " << attempt;
  }
}

TEST(RetryPolicy, OneMicrosecondBaseNeverRoundsToZero) {
  // 1 µs scaled by jitter < 1.0 truncates to 0 without the floor.
  RetryPolicy p;
  p.base_delay = microseconds(1);
  p.max_delay = microseconds(10000);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    p.seed = seed;
    EXPECT_GE(p.delay(0).count(), 1) << "seed " << seed;
  }
}

TEST(RetryPolicy, JitterIsDeterministicPerSeedAndAttempt) {
  RetryPolicy a;
  a.base_delay = microseconds(100);
  a.seed = 7;
  RetryPolicy b = a;
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(a.delay(attempt), b.delay(attempt));
  }
  // A different seed decorrelates at least one attempt of the schedule.
  RetryPolicy c = a;
  c.seed = 8;
  bool differs = false;
  for (std::size_t attempt = 0; attempt < 10 && !differs; ++attempt) {
    differs = c.delay(attempt) != a.delay(attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryPolicy, DelayIsMonotoneNonDecreasingPreJitter) {
  // The pre-jitter step never shrinks; with a fixed seed the jittered
  // delay can wobble inside [0.5, 1.0] but stays within one doubling.
  RetryPolicy p;
  p.base_delay = microseconds(10);
  p.max_delay = microseconds(100000);
  p.seed = 3;
  for (std::size_t attempt = 1; attempt < 10; ++attempt) {
    EXPECT_GE(p.delay(attempt).count() * 2,
              p.delay(attempt - 1).count());
  }
}

}  // namespace
}  // namespace svc
