#include "gf/gf_simd.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace gf {
namespace {

std::vector<std::byte> RandomBytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng() & 0xff);
  return v;
}

TEST(SplitTable, MatchesFullMultiply) {
  for (unsigned c = 0; c < 256; c += 3) {
    const SplitTable t = make_split_table(static_cast<u8>(c));
    for (unsigned x = 0; x < 256; ++x) {
      const u8 expect = mul(static_cast<u8>(c), static_cast<u8>(x));
      EXPECT_EQ(t.lo[x & 0xf] ^ t.hi[x >> 4], expect)
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(IsaDispatch, BestIsaIsAtLeastScalar) {
  EXPECT_GE(static_cast<int>(best_isa()), static_cast<int>(IsaLevel::kScalar));
}

TEST(IsaDispatch, SetClampsAboveBest) {
  const IsaLevel prev = active_isa();
  set_active_isa(IsaLevel::kAvx2);
  EXPECT_LE(static_cast<int>(active_isa()), static_cast<int>(best_isa()));
  set_active_isa(prev);
}

/// Parameterized over (ISA level, region size): every ISA path must
/// agree with the scalar reference on every size, including non-SIMD
/// tails and sub-vector regions.
class RegionKernelTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  void SetUp() override {
    prev_ = active_isa();
    const auto level = static_cast<IsaLevel>(std::get<0>(GetParam()));
    if (static_cast<int>(level) > static_cast<int>(best_isa())) {
      GTEST_SKIP() << "host lacks this ISA";
    }
    set_active_isa(level);
  }
  void TearDown() override { set_active_isa(prev_); }

  std::size_t size() const { return std::get<1>(GetParam()); }

 private:
  IsaLevel prev_;
};

TEST_P(RegionKernelTest, MulSetMatchesScalarReference) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 1234 + n);
  std::vector<std::byte> got(n), want(n);
  for (const u8 c : {u8{0}, u8{1}, u8{2}, u8{0x53}, u8{0xff}}) {
    mul_set(c, src.data(), got.data(), n);
    const SplitTable t = make_split_table(c);
    detail::mul_set_scalar(t, src.data(), want.data(), n);
    EXPECT_EQ(got, want) << "c=" << unsigned{c} << " n=" << n;
  }
}

TEST_P(RegionKernelTest, MulAccMatchesScalarReference) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 99 + n);
  const auto init = RandomBytes(n, 7 + n);
  for (const u8 c : {u8{3}, u8{0x80}, u8{0xCA}}) {
    std::vector<std::byte> got = init, want = init;
    mul_acc(c, src.data(), got.data(), n);
    const SplitTable t = make_split_table(c);
    detail::mul_acc_scalar(t, src.data(), want.data(), n);
    EXPECT_EQ(got, want) << "c=" << unsigned{c} << " n=" << n;
  }
}

TEST_P(RegionKernelTest, XorAccMatchesScalarReference) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 5 + n);
  const auto init = RandomBytes(n, 11 + n);
  std::vector<std::byte> got = init, want = init;
  xor_acc(src.data(), got.data(), n);
  detail::xor_acc_scalar(src.data(), want.data(), n);
  EXPECT_EQ(got, want);
}

TEST_P(RegionKernelTest, MulAccByOneIsXor) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 21 + n);
  const auto init = RandomBytes(n, 22 + n);
  std::vector<std::byte> got = init, want = init;
  mul_acc(1, src.data(), got.data(), n);
  xor_acc(src.data(), want.data(), n);
  EXPECT_EQ(got, want);
}

TEST_P(RegionKernelTest, MulSetByZeroClears) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 31 + n);
  std::vector<std::byte> got(n, std::byte{0xAA});
  mul_set(0, src.data(), got.data(), n);
  for (const std::byte b : got) EXPECT_EQ(b, std::byte{0});
}

INSTANTIATE_TEST_SUITE_P(
    AllIsaAndSizes, RegionKernelTest,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(IsaLevel::kScalar),
                          static_cast<int>(IsaLevel::kSsse3),
                          static_cast<int>(IsaLevel::kAvx2)),
        ::testing::Values<std::size_t>(1, 15, 16, 17, 31, 32, 33, 63, 64,
                                       100, 1024, 4096, 5000)));

TEST(RegionKernels, AccumulationIsLinear) {
  // c1*x + c2*x == (c1+c2)*x region-wise.
  const std::size_t n = 512;
  const auto src = RandomBytes(n, 77);
  std::vector<std::byte> lhs(n, std::byte{0}), rhs(n, std::byte{0});
  mul_acc(0x1b, src.data(), lhs.data(), n);
  mul_acc(0x2d, src.data(), lhs.data(), n);
  mul_set(add(0x1b, 0x2d), src.data(), rhs.data(), n);
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace gf
