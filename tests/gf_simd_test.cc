#include "gf/gf_simd.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace gf {
namespace {

std::vector<std::byte> RandomBytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng() & 0xff);
  return v;
}

TEST(SplitTable, MatchesFullMultiply) {
  for (unsigned c = 0; c < 256; c += 3) {
    const SplitTable t = make_split_table(static_cast<u8>(c));
    for (unsigned x = 0; x < 256; ++x) {
      const u8 expect = mul(static_cast<u8>(c), static_cast<u8>(x));
      EXPECT_EQ(t.lo[x & 0xf] ^ t.hi[x >> 4], expect)
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(IsaDispatch, BestIsaIsSupported) {
  EXPECT_TRUE(isa_supported(best_isa()));
  EXPECT_TRUE(isa_supported(IsaLevel::kScalar));
}

TEST(IsaDispatch, SetInstallsSupportedAndClampsUnsupported) {
  const IsaLevel prev = active_isa();
  for (std::size_t l = 0; l < kNumIsaLevels; ++l) {
    const auto level = static_cast<IsaLevel>(l);
    const IsaLevel installed = set_active_isa(level);
    if (isa_supported(level)) {
      EXPECT_EQ(installed, level) << isa_name(level);
    } else {
      EXPECT_EQ(installed, best_isa()) << isa_name(level);
    }
    EXPECT_EQ(active_isa(), installed);
  }
  set_active_isa(prev);
}

TEST(IsaDispatch, ParseRoundTripsEveryName) {
  for (std::size_t l = 0; l < kNumIsaLevels; ++l) {
    const auto level = static_cast<IsaLevel>(l);
    const auto parsed = parse_isa(isa_name(level));
    ASSERT_TRUE(parsed.has_value()) << isa_name(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_isa("avx1024").has_value());
  EXPECT_FALSE(parse_isa("").has_value());
}

TEST(AffineMatrix, MatchesFieldMultiplyForAllBytes) {
  // Scalar model of GF2P8AFFINEQB (Intel SDM): result bit i of each
  // byte is parity(matrix.byte[7 - i] & src byte).
  for (unsigned c = 0; c < 256; ++c) {
    const std::uint64_t mat = make_affine_matrix(static_cast<u8>(c));
    for (unsigned x = 0; x < 256; ++x) {
      u8 got = 0;
      for (unsigned i = 0; i < 8; ++i) {
        const u8 row = static_cast<u8>(mat >> (8 * (7 - i)));
        if (__builtin_parity(row & x)) got |= static_cast<u8>(1u << i);
      }
      EXPECT_EQ(got, mul(static_cast<u8>(c), static_cast<u8>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

/// Parameterized over (ISA level, region size): every ISA path must
/// agree with the scalar reference on every size, including non-SIMD
/// tails and sub-vector regions.
class RegionKernelTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  void SetUp() override {
    prev_ = active_isa();
    const auto level = static_cast<IsaLevel>(std::get<0>(GetParam()));
    // Levels are preference-ordered, not a strict subset chain, so the
    // skip test is isa_supported, not an enum comparison.
    if (!isa_supported(level)) {
      GTEST_SKIP() << "host/build lacks " << isa_name(level);
    }
    set_active_isa(level);
  }
  void TearDown() override { set_active_isa(prev_); }

  std::size_t size() const { return std::get<1>(GetParam()); }

 private:
  IsaLevel prev_;
};

TEST_P(RegionKernelTest, MulSetMatchesScalarReference) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 1234 + n);
  std::vector<std::byte> got(n), want(n);
  for (const u8 c : {u8{0}, u8{1}, u8{2}, u8{0x53}, u8{0xff}}) {
    mul_set(c, src.data(), got.data(), n);
    const SplitTable t = make_split_table(c);
    detail::mul_set_scalar(t, src.data(), want.data(), n);
    EXPECT_EQ(got, want) << "c=" << unsigned{c} << " n=" << n;
  }
}

TEST_P(RegionKernelTest, MulAccMatchesScalarReference) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 99 + n);
  const auto init = RandomBytes(n, 7 + n);
  for (const u8 c : {u8{3}, u8{0x80}, u8{0xCA}}) {
    std::vector<std::byte> got = init, want = init;
    mul_acc(c, src.data(), got.data(), n);
    const SplitTable t = make_split_table(c);
    detail::mul_acc_scalar(t, src.data(), want.data(), n);
    EXPECT_EQ(got, want) << "c=" << unsigned{c} << " n=" << n;
  }
}

TEST_P(RegionKernelTest, XorAccMatchesScalarReference) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 5 + n);
  const auto init = RandomBytes(n, 11 + n);
  std::vector<std::byte> got = init, want = init;
  xor_acc(src.data(), got.data(), n);
  detail::xor_acc_scalar(src.data(), want.data(), n);
  EXPECT_EQ(got, want);
}

TEST_P(RegionKernelTest, MulAccByOneIsXor) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 21 + n);
  const auto init = RandomBytes(n, 22 + n);
  std::vector<std::byte> got = init, want = init;
  mul_acc(1, src.data(), got.data(), n);
  xor_acc(src.data(), want.data(), n);
  EXPECT_EQ(got, want);
}

TEST_P(RegionKernelTest, MulSetByZeroClears) {
  const std::size_t n = size();
  const auto src = RandomBytes(n, 31 + n);
  std::vector<std::byte> got(n, std::byte{0xAA});
  mul_set(0, src.data(), got.data(), n);
  for (const std::byte b : got) EXPECT_EQ(b, std::byte{0});
}

INSTANTIATE_TEST_SUITE_P(
    AllIsaAndSizes, RegionKernelTest,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(IsaLevel::kScalar),
                          static_cast<int>(IsaLevel::kSsse3),
                          static_cast<int>(IsaLevel::kAvx2),
                          static_cast<int>(IsaLevel::kAvx512),
                          static_cast<int>(IsaLevel::kGfni)),
        ::testing::Values<std::size_t>(1, 15, 16, 17, 31, 32, 33, 63, 64,
                                       100, 1024, 4096, 5000)));

/// Exhaustive cross-backend differential: one param = one ISA level,
/// checked bit-for-bit against the scalar reference.
class IsaDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    prev_ = active_isa();
    level_ = static_cast<IsaLevel>(GetParam());
    if (!isa_supported(level_)) {
      GTEST_SKIP() << "host/build lacks " << isa_name(level_);
    }
    set_active_isa(level_);
  }
  void TearDown() override { set_active_isa(prev_); }

  IsaLevel level_ = IsaLevel::kScalar;

 private:
  IsaLevel prev_ = IsaLevel::kScalar;
};

TEST_P(IsaDifferentialTest, AllCoefficientsAllOddSizes) {
  // Every coefficient at a few vector-edge sizes, and every odd size
  // 1..257 (every possible SIMD tail length) at a coefficient subset.
  const std::size_t kMax = 257;
  const auto src = RandomBytes(kMax, 41);
  const auto init = RandomBytes(kMax, 42);
  std::vector<std::byte> got(kMax), want(kMax);

  auto check = [&](u8 c, std::size_t n) {
    const SplitTable t = make_split_table(c);
    std::copy_n(init.begin(), n, got.begin());
    std::copy_n(init.begin(), n, want.begin());
    mul_acc(c, src.data(), got.data(), n);
    detail::mul_acc_scalar(t, src.data(), want.data(), n);
    ASSERT_TRUE(std::equal(got.begin(), got.begin() + n, want.begin()))
        << isa_name(level_) << " mul_acc c=" << unsigned{c} << " n=" << n;
    mul_set(c, src.data(), got.data(), n);
    detail::mul_set_scalar(t, src.data(), want.data(), n);
    ASSERT_TRUE(std::equal(got.begin(), got.begin() + n, want.begin()))
        << isa_name(level_) << " mul_set c=" << unsigned{c} << " n=" << n;
  };

  for (unsigned c = 0; c < 256; ++c) {
    for (const std::size_t n : {1ul, 31ul, 32ul, 64ul, 65ul, 255ul, 257ul}) {
      check(static_cast<u8>(c), n);
    }
  }
  for (std::size_t n = 1; n <= kMax; n += 2) {
    for (const u8 c : {u8{0}, u8{1}, u8{2}, u8{0x53}, u8{0x8e}, u8{0xff}}) {
      check(c, n);
    }
  }
}

TEST_P(IsaDifferentialTest, UnalignedSrcAndDstOffsets) {
  const std::size_t kMax = 257;
  const auto srcbuf = RandomBytes(kMax + 8, 51);
  const auto initbuf = RandomBytes(kMax + 8, 52);
  for (const std::size_t soff : {0ul, 1ul, 2ul, 3ul}) {
    for (const std::size_t doff : {0ul, 1ul, 2ul, 3ul}) {
      for (const std::size_t n : {1ul, 63ul, 64ul, 65ul, 129ul, 257ul}) {
        for (const u8 c : {u8{2}, u8{0xCA}}) {
          std::vector<std::byte> got = initbuf, want = initbuf;
          mul_acc(c, srcbuf.data() + soff, got.data() + doff, n);
          detail::mul_acc_scalar(make_split_table(c), srcbuf.data() + soff,
                                 want.data() + doff, n);
          ASSERT_EQ(got, want) << isa_name(level_) << " soff=" << soff
                               << " doff=" << doff << " n=" << n;
        }
      }
    }
  }
}

TEST_P(IsaDifferentialTest, FusedMultiMatchesSequentialSingle) {
  const u8 cs[4] = {u8{2}, u8{143}, u8{255}, u8{7}};
  PreparedCoeff coeffs[4];
  for (int t = 0; t < 4; ++t) coeffs[t] = prepare_coeff(cs[t]);

  for (const std::size_t n :
       {1ul, 5ul, 63ul, 64ul, 65ul, 127ul, 128ul, 257ul, 1000ul, 4096ul}) {
    const auto src = RandomBytes(n, 61 + n);
    for (std::size_t ndst = 1; ndst <= kMaxFusedDst; ++ndst) {
      std::vector<std::vector<std::byte>> got, want;
      std::vector<std::byte*> dsts;
      for (std::size_t t = 0; t < ndst; ++t) {
        got.push_back(RandomBytes(n, 71 + t));
        want.push_back(got.back());
        dsts.push_back(got[t].data());
      }
      mul_acc_multi(coeffs, src.data(), dsts.data(), ndst, n);
      for (std::size_t t = 0; t < ndst; ++t) {
        detail::mul_acc_scalar(coeffs[t].split, src.data(), want[t].data(),
                               n);
        ASSERT_EQ(got[t], want[t])
            << isa_name(level_) << " ndst=" << ndst << " t=" << t
            << " n=" << n;
      }
    }
  }
}

TEST_P(IsaDifferentialTest, FusedMultiWithPrefetchArrayIsIdentical) {
  // The prefetch-pointer array only moves cache fills; output must be
  // bit-identical at any distance, including distances past the end
  // (every entry then clamps to the last line).
  const std::size_t n = 8192;
  const auto src = RandomBytes(n, 81);
  PreparedCoeff coeffs[4];
  for (int t = 0; t < 4; ++t) {
    coeffs[t] = prepare_coeff(static_cast<u8>(3 + 40 * t));
  }
  const std::size_t lines = n / 64;
  for (const std::size_t d : {1ul, 4ul, 13ul, lines, 4 * lines}) {
    std::vector<const std::byte*> pf(lines);
    for (std::size_t t = 0; t < lines; ++t) {
      pf[t] = src.data() + std::min(t + d, lines - 1) * 64;
    }
    std::vector<std::vector<std::byte>> got, want;
    std::vector<std::byte*> gp, wp;
    for (std::size_t t = 0; t < 4; ++t) {
      got.push_back(RandomBytes(n, 91 + t));
      want.push_back(got.back());
      gp.push_back(got[t].data());
      wp.push_back(want[t].data());
    }
    mul_acc_multi(coeffs, src.data(), gp.data(), 4, n, pf.data());
    mul_acc_multi(coeffs, src.data(), wp.data(), 4, n, nullptr);
    for (std::size_t t = 0; t < 4; ++t) {
      ASSERT_EQ(got[t], want[t]) << isa_name(level_) << " d=" << d;
    }
  }
}

TEST_P(IsaDifferentialTest, DotMultiMatchesScalarReference) {
  // dst[t] = XOR_s c[s][t] * src[s], SET semantics, against a reference
  // assembled from the single-destination scalar kernels.
  for (const std::size_t nsrc : {1ul, 2ul, 3ul, 5ul, 12ul}) {
    for (const std::size_t n : {1ul, 31ul, 63ul, 64ul, 65ul, 257ul, 1000ul}) {
      std::vector<std::vector<std::byte>> src_bufs;
      std::vector<const std::byte*> srcs;
      for (std::size_t s = 0; s < nsrc; ++s) {
        src_bufs.push_back(RandomBytes(n, 200 + 10 * nsrc + s));
        srcs.push_back(src_bufs.back().data());
      }
      const std::size_t stride = kMaxFusedDst;
      std::vector<PreparedCoeff> coeffs(nsrc * stride);
      for (std::size_t s = 0; s < nsrc; ++s) {
        for (std::size_t t = 0; t < stride; ++t) {
          coeffs[s * stride + t] =
              prepare_coeff(static_cast<u8>(1 + 37 * s + 11 * t));
        }
      }
      for (std::size_t ndst = 1; ndst <= kMaxFusedDst; ++ndst) {
        std::vector<std::vector<std::byte>> got(
            ndst, RandomBytes(n, 300));  // non-zero initial contents:
                                         // SET must fully overwrite
        std::vector<std::vector<std::byte>> want(ndst,
                                                 std::vector<std::byte>(n));
        std::vector<std::byte*> gp;
        for (std::size_t t = 0; t < ndst; ++t) gp.push_back(got[t].data());
        mul_dot_multi(coeffs.data(), stride, srcs.data(), nsrc, gp.data(),
                      ndst, n);
        for (std::size_t t = 0; t < ndst; ++t) {
          detail::mul_set_scalar(coeffs[t].split, srcs[0], want[t].data(),
                                 n);
          for (std::size_t s = 1; s < nsrc; ++s) {
            detail::mul_acc_scalar(coeffs[s * stride + t].split, srcs[s],
                                   want[t].data(), n);
          }
          ASSERT_EQ(got[t], want[t])
              << isa_name(level_) << " nsrc=" << nsrc << " ndst=" << ndst
              << " t=" << t << " n=" << n;
        }
      }
    }
  }
}

TEST_P(IsaDifferentialTest, DotMultiWithPrefetchArrayIsIdentical) {
  // Source-major prefetch array at several distances: scheduling only,
  // output bit-identical to the no-prefetch call.
  const std::size_t n = 4096, nsrc = 6, ndst = 4;
  const std::size_t lines = n / 64;
  std::vector<std::vector<std::byte>> src_bufs;
  std::vector<const std::byte*> srcs;
  for (std::size_t s = 0; s < nsrc; ++s) {
    src_bufs.push_back(RandomBytes(n, 400 + s));
    srcs.push_back(src_bufs.back().data());
  }
  std::vector<PreparedCoeff> coeffs(nsrc * ndst);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = prepare_coeff(static_cast<u8>(3 + 29 * i));
  }
  std::vector<std::vector<std::byte>> ref(ndst, std::vector<std::byte>(n));
  std::vector<std::byte*> rp;
  for (auto& v : ref) rp.push_back(v.data());
  mul_dot_multi(coeffs.data(), ndst, srcs.data(), nsrc, rp.data(), ndst, n);

  for (const std::size_t d : {1ul, 7ul, lines, 2 * nsrc * lines}) {
    std::vector<const std::byte*> pf(nsrc * lines);
    const std::size_t last = nsrc * lines - 1;
    for (std::size_t t = 0; t < pf.size(); ++t) {
      const std::size_t target = std::min(t + d, last);
      pf[t] = srcs[target / lines] + (target % lines) * 64;
    }
    std::vector<std::vector<std::byte>> got(ndst, std::vector<std::byte>(n));
    std::vector<std::byte*> gp;
    for (auto& v : got) gp.push_back(v.data());
    mul_dot_multi(coeffs.data(), ndst, srcs.data(), nsrc, gp.data(), ndst,
                  n, pf.data(), lines);
    for (std::size_t t = 0; t < ndst; ++t) {
      ASSERT_EQ(got[t], ref[t]) << isa_name(level_) << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIsaLevels, IsaDifferentialTest,
    ::testing::Values(static_cast<int>(IsaLevel::kScalar),
                      static_cast<int>(IsaLevel::kSsse3),
                      static_cast<int>(IsaLevel::kAvx2),
                      static_cast<int>(IsaLevel::kAvx512),
                      static_cast<int>(IsaLevel::kGfni)));

TEST(RegionKernels, AccumulationIsLinear) {
  // c1*x + c2*x == (c1+c2)*x region-wise.
  const std::size_t n = 512;
  const auto src = RandomBytes(n, 77);
  std::vector<std::byte> lhs(n, std::byte{0}), rhs(n, std::byte{0});
  mul_acc(0x1b, src.data(), lhs.data(), n);
  mul_acc(0x2d, src.data(), lhs.data(), n);
  mul_set(add(0x1b, 0x2d), src.data(), rhs.data(), n);
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace gf
