// svc::BoundedQueue edge cases the service relies on: a zero-capacity
// queue rejects every push (admission control with no buffer at all),
// close() racing concurrent pushers never loses or duplicates an item,
// and items pushed before close() are still drained by pop() — false
// only once closed AND empty.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "svc/bounded_queue.h"

namespace svc {
namespace {

TEST(BoundedQueueTest, ZeroCapacityRejectsEveryPush) {
  BoundedQueue<int> q(0);
  int v = 7;
  EXPECT_FALSE(q.try_push(v));
  // A rejected push leaves the item untouched for the caller's
  // rejection path.
  EXPECT_EQ(v, 7);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_water(), 0u);
  // pop() on the closed empty queue returns immediately with false
  // rather than blocking forever.
  q.close();
  int out = 0;
  EXPECT_FALSE(q.pop(&out));
}

TEST(BoundedQueueTest, PushRejectsAtCapacityAndAfterClose) {
  BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));  // full
  EXPECT_EQ(c, 3);
  int out = 0;
  EXPECT_TRUE(q.try_pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(c));  // space again
  q.close();
  int d = 4;
  EXPECT_FALSE(q.try_push(d));  // closed
}

TEST(BoundedQueueTest, PopDrainsItemsPushedBeforeClose) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(q.try_push(v));
  }
  q.close();
  // FIFO drain of everything admitted before the close...
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(&out));
    EXPECT_EQ(out, i);
  }
  // ...then closed-and-empty.
  EXPECT_FALSE(q.pop(&out));
  EXPECT_FALSE(q.try_pop(&out));
  EXPECT_EQ(q.high_water(), 5u);
}

TEST(BoundedQueueTest, CloseUnblocksAWaitingPop) {
  BoundedQueue<int> q(4);
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(&out));  // blocks until close
    returned.store(true);
  });
  // Give the popper a moment to park in the wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  q.close();
  popper.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, ConcurrentCloseWhilePushingLosesNothing) {
  // Pushers hammer the queue while a closer slams it shut mid-stream
  // and drainers pop concurrently: every item is either rejected at
  // push (caller keeps it) or popped exactly once — accepted + rejected
  // must equal pushed, popped must equal accepted.
  constexpr std::size_t kPushers = 4;
  constexpr std::size_t kPerPusher = 5000;
  BoundedQueue<std::size_t> q(64);

  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> popped{0};

  std::vector<std::thread> pushers;
  for (std::size_t p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerPusher; ++i) {
        std::size_t item = p * kPerPusher + i;
        if (q.try_push(item)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> drainers;
  for (std::size_t d = 0; d < 2; ++d) {
    drainers.emplace_back([&] {
      std::size_t out;
      while (q.pop(&out)) popped.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Close somewhere in the middle of the push storm.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.close();

  for (auto& t : pushers) t.join();
  for (auto& t : drainers) t.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kPushers * kPerPusher);
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_LE(q.high_water(), 64u);
}

TEST(BoundedQueueTest, MoveOnlyItemsStayWithCallerOnReject) {
  BoundedQueue<std::unique_ptr<int>> q(1);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  EXPECT_TRUE(q.try_push(a));
  EXPECT_EQ(a, nullptr);  // moved in
  EXPECT_FALSE(q.try_push(b));
  ASSERT_NE(b, nullptr);  // rejected push must not consume the item
  EXPECT_EQ(*b, 2);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(&out));
  EXPECT_EQ(*out, 1);
}

}  // namespace
}  // namespace svc
