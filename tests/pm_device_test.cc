#include "simmem/pm_device.h"

#include <gtest/gtest.h>

#include "simmem/address_space.h"

namespace simmem {
namespace {

PmConfig TestCfg() {
  PmConfig cfg;
  cfg.channels = 2;
  cfg.read_buffer_bytes_per_channel = 4 * kXpLineBytes;  // 4 XPLines each
  cfg.buffer_hit_latency_ns = 100.0;
  cfg.media_latency_ns = 300.0;
  cfg.media_read_gbps_per_channel = 1.0;  // 256 B -> 256 ns service
  cfg.interleave_bytes = 4096;
  return cfg;
}

TEST(PmDevice, MissPaysMediaLatencyAndTraffic) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  const double done = dev.read(0, 0.0);
  EXPECT_DOUBLE_EQ(done, 300.0);
  EXPECT_EQ(pmu.pm_buffer_misses, 1u);
  EXPECT_EQ(pmu.pm_media_read_bytes, kXpLineBytes);
}

TEST(PmDevice, ImplicitLoadServesWholeXpLine) {
  // A 64 B miss pulls the 256 B XPLine: the other three lines hit the
  // buffer at buffer latency with no extra media traffic.
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);
  for (const std::uint64_t off : {64u, 128u, 192u}) {
    const double done = dev.read(off, 1000.0);
    EXPECT_DOUBLE_EQ(done, 1100.0) << "off=" << off;
  }
  EXPECT_EQ(pmu.pm_media_read_bytes, kXpLineBytes);
  EXPECT_EQ(pmu.pm_buffer_hits, 3u);
}

TEST(PmDevice, BufferHitBeforeFillCompletesWaitsResidual) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);                       // XPLine ready at 300
  const double done = dev.read(64, 50.0); // hit on the in-flight fill
  EXPECT_DOUBLE_EQ(done, 400.0);          // max(50, 300) + 100
}

TEST(PmDevice, LruEvictionAndWastedFillAccounting) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  // Fill channel 0's buffer (4 XPLines) without re-touching any line.
  for (std::uint64_t i = 0; i < 4; ++i) dev.read(i * kXpLineBytes, 0.0);
  EXPECT_EQ(dev.buffer_lines(0), 4u);
  // Fifth distinct XPLine evicts the LRU one whose only access was the
  // triggering read: a wasted fill (Observation 5's thrashing).
  dev.read(4 * kXpLineBytes, 0.0);
  EXPECT_EQ(dev.buffer_lines(0), 4u);
  EXPECT_EQ(pmu.pm_buffer_wasted_fills, 1u);
}

TEST(PmDevice, ReaccessedFillIsNotWasted) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);
  dev.read(64, 500.0);  // second access to XPLine 0
  for (std::uint64_t i = 1; i < 5; ++i) dev.read(i * kXpLineBytes, 1000.0);
  EXPECT_EQ(pmu.pm_buffer_wasted_fills, 0u);
}

TEST(PmDevice, ChannelInterleaveSplitsTraffic) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);     // page 0 -> channel 0
  dev.read(4096, 0.0);  // page 1 -> channel 1
  EXPECT_EQ(dev.buffer_lines(0), 1u);
  EXPECT_EQ(dev.buffer_lines(1), 1u);
}

TEST(PmDevice, BandwidthQueueingDelaysBackToBackMisses) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  // Two misses on the same channel at t=0: the second queues behind the
  // first 256 ns transfer.
  const double first = dev.read(0, 0.0);
  const double second = dev.read(kXpLineBytes, 0.0);
  EXPECT_DOUBLE_EQ(first, 300.0);
  EXPECT_DOUBLE_EQ(second, 256.0 + 300.0);
}

TEST(PmDevice, IndependentChannelsDoNotQueue) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  const double a = dev.read(0, 0.0);
  const double b = dev.read(4096, 0.0);  // other channel
  EXPECT_DOUBLE_EQ(a, 300.0);
  EXPECT_DOUBLE_EQ(b, 300.0);
}

TEST(PmDevice, WriteInvalidatesBufferedLine) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);
  EXPECT_EQ(dev.buffer_lines(0), 1u);
  dev.write(0, 1000.0);
  EXPECT_EQ(dev.buffer_lines(0), 0u);
  // Next read misses again.
  dev.read(64, 2000.0);
  EXPECT_EQ(pmu.pm_buffer_misses, 2u);
}

TEST(PmDevice, ResetClearsState) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.read(0, 0.0);
  dev.reset();
  EXPECT_EQ(dev.buffer_lines(0), 0u);
  const double done = dev.read(64, 0.0);  // cold again, no queueing
  EXPECT_DOUBLE_EQ(done, 300.0);
}

TEST(PmDevice, SequentialWritesCoalescePerfectly) {
  PmuCounters pmu;
  PmConfig cfg = TestCfg();
  cfg.write_buffer_bytes_per_channel = 4 * kXpLineBytes;
  PmDevice dev(cfg, &pmu);
  // Fill 4 XPLines densely (16 x 64 B), then overflow with 2 more to
  // force flushes of fully-dirty entries.
  for (std::uint64_t i = 0; i < 24; ++i) dev.write(i * kCacheLineBytes, 0.0);
  EXPECT_EQ(pmu.pm_write_bytes, 24 * kCacheLineBytes);
  EXPECT_EQ(pmu.pm_media_write_bytes, 2 * kXpLineBytes);
  EXPECT_EQ(pmu.pm_wc_partial_flushes, 0u)
      << "dense sequential writes must flush full XPLines";
}

TEST(PmDevice, ScatteredWritesAmplify) {
  PmuCounters pmu;
  PmConfig cfg = TestCfg();
  cfg.write_buffer_bytes_per_channel = 4 * kXpLineBytes;
  PmDevice dev(cfg, &pmu);
  // One 64 B write per distinct XPLine: every flush is 3/4 wasted.
  for (std::uint64_t i = 0; i < 8; ++i) dev.write(i * kXpLineBytes, 0.0);
  EXPECT_EQ(pmu.pm_media_write_bytes, 4 * kXpLineBytes);  // 4 flushed so far
  EXPECT_EQ(pmu.pm_wc_partial_flushes, 4u);
  dev.flush_writes(0.0);
  EXPECT_EQ(pmu.pm_media_write_bytes, 8 * kXpLineBytes);
  EXPECT_EQ(pmu.pm_wc_partial_flushes, 8u);
  EXPECT_DOUBLE_EQ(pmu.media_write_amplification(), 4.0);
}

TEST(PmDevice, FlushWritesDrainsEverything) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  dev.write(0, 0.0);
  dev.write(4096, 0.0);  // other channel
  dev.flush_writes(10.0);
  EXPECT_EQ(pmu.pm_media_write_bytes, 2 * kXpLineBytes);
  dev.flush_writes(20.0);  // idempotent
  EXPECT_EQ(pmu.pm_media_write_bytes, 2 * kXpLineBytes);
}

TEST(PmDevice, CapacityFromConfig) {
  PmuCounters pmu;
  PmDevice dev(TestCfg(), &pmu);
  EXPECT_EQ(dev.buffer_capacity_lines(), 4u);
}

}  // namespace
}  // namespace simmem
