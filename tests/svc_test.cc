// StripeService behavior: concurrent producers, batching vs serial
// bit-identity, two-level admission control (queue bound and per-class
// limits), graceful shutdown (drain and cancel), per-request failure
// statuses, and the rolling pattern feed into the adaptive layer.
//
// The deterministic saturation trick: the service's codec factory runs
// on the dispatcher thread (first batch of a (k, m) with no override),
// so a factory that blocks on a gate stalls dispatch exactly between
// admission and the pool — the queue then fills or the class limit
// holds for as long as the test needs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "ec/isal.h"
#include "obs/trace.h"
#include "svc/stripe_service.h"

namespace svc {
namespace {

using namespace std::chrono_literals;

/// Owns the block buffers of `n` stripes and builds requests on them.
class StripeSet {
 public:
  StripeSet(std::size_t n, StripeShape sh, unsigned seed)
      : n_(n), sh_(sh), blocks_(n * (sh.k + sh.m)) {
    std::mt19937_64 rng(seed);
    for (std::size_t s = 0; s < n_; ++s) {
      for (std::size_t i = 0; i < sh_.k + sh_.m; ++i) {
        auto& b = block_vec(s, i);
        b.resize(sh_.block_size);
        if (i < sh_.k) {
          for (auto& x : b) x = static_cast<std::byte>(rng());
        }
      }
    }
  }

  std::size_t size() const { return n_; }
  const StripeShape& shape() const { return sh_; }
  std::vector<std::byte>& block_vec(std::size_t s, std::size_t i) {
    return blocks_[s * (sh_.k + sh_.m) + i];
  }
  std::byte* block(std::size_t s, std::size_t i) {
    return block_vec(s, i).data();
  }

  EncodeRequest encode_request(std::size_t s,
                               const ec::Codec* codec = nullptr) {
    EncodeRequest req;
    req.shape = sh_;
    req.codec = codec;
    for (std::size_t i = 0; i < sh_.k; ++i) req.data.push_back(block(s, i));
    for (std::size_t j = 0; j < sh_.m; ++j) {
      req.parity.push_back(block(s, sh_.k + j));
    }
    return req;
  }

  DecodeRequest decode_request(std::size_t s,
                               std::vector<std::size_t> erasures,
                               const ec::Codec* codec = nullptr) {
    DecodeRequest req;
    req.shape = sh_;
    req.codec = codec;
    req.erasures = std::move(erasures);
    for (std::size_t i = 0; i < sh_.k + sh_.m; ++i) {
      req.blocks.push_back(block(s, i));
    }
    return req;
  }

  /// Serial reference encode of every stripe into `parity_out` (same
  /// layout as the parity blocks), without touching this set's parity.
  std::vector<std::vector<std::byte>> reference_parity(
      const ec::Codec& codec) {
    std::vector<std::vector<std::byte>> out(n_ * sh_.m);
    for (std::size_t s = 0; s < n_; ++s) {
      std::vector<const std::byte*> data;
      std::vector<std::byte*> parity;
      for (std::size_t i = 0; i < sh_.k; ++i) data.push_back(block(s, i));
      for (std::size_t j = 0; j < sh_.m; ++j) {
        out[s * sh_.m + j].resize(sh_.block_size);
        parity.push_back(out[s * sh_.m + j].data());
      }
      codec.encode(sh_.block_size, data, parity);
    }
    return out;
  }

 private:
  std::size_t n_;
  StripeShape sh_;
  std::vector<std::vector<std::byte>> blocks_;
};

/// Codec factory that blocks its first invocation on a gate, stalling
/// the dispatcher thread (see file comment).
struct GatedFactory {
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_f{release.get_future()};
  std::atomic<int> calls{0};

  StripeService::Config install(StripeService::Config cfg) {
    cfg.codec_factory = [this](std::size_t k, std::size_t m)
        -> std::unique_ptr<const ec::Codec> {
      if (calls.fetch_add(1) == 0) {
        entered.set_value();
        release_f.wait();
      }
      return std::make_unique<ec::IsalCodec>(k, m);
    };
    return cfg;
  }
};

/// Minimal codec whose decode always fails — drives kDecodeFailed.
class UndecodableCodec : public ec::Codec {
 public:
  UndecodableCodec(std::size_t k, std::size_t m) : k_(k), m_(m) {}
  std::string name() const override { return "undecodable"; }
  ec::CodeParams params() const override { return {k_, m_}; }
  ec::SimdWidth simd() const override { return ec::SimdWidth::kAvx256; }
  void encode(std::size_t, std::span<const std::byte* const>,
              std::span<std::byte* const>) const override {}
  bool decode(std::size_t, std::span<std::byte* const>,
              std::span<const std::size_t>) const override {
    return false;
  }
  ec::EncodePlan encode_plan(std::size_t,
                             const simmem::ComputeCost&) const override {
    return {};
  }
  ec::EncodePlan decode_plan(std::size_t, const simmem::ComputeCost&,
                             std::span<const std::size_t>) const override {
    return {};
  }

 private:
  std::size_t k_;
  std::size_t m_;
};

TEST(StripeServiceTest, ConcurrentProducersAllCompleteCorrectly) {
  const StripeShape sh{4, 2, 512};
  const ec::IsalCodec codec(sh.k, sh.m);
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 64;

  StripeService service;
  std::vector<std::unique_ptr<StripeSet>> sets;
  for (std::size_t t = 0; t < kProducers; ++t) {
    sets.push_back(std::make_unique<StripeSet>(
        kPerProducer, sh, static_cast<unsigned>(1000 + t)));
  }
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      std::vector<std::future<Result>> done;
      for (std::size_t s = 0; s < kPerProducer; ++s) {
        done.push_back(
            service.submit(sets[t]->encode_request(s, &codec)));
      }
      for (auto& f : done) {
        if (f.get().ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : producers) th.join();

  EXPECT_EQ(ok.load(), kProducers * kPerProducer);
  // Batched parity is bit-identical to the serial reference.
  for (std::size_t t = 0; t < kProducers; ++t) {
    const auto ref = sets[t]->reference_parity(codec);
    for (std::size_t s = 0; s < kPerProducer; ++s) {
      for (std::size_t j = 0; j < sh.m; ++j) {
        ASSERT_EQ(sets[t]->block_vec(s, sh.k + j), ref[s * sh.m + j])
            << "producer " << t << " stripe " << s << " parity " << j;
      }
    }
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.admitted, kProducers * kPerProducer);
  EXPECT_EQ(st.completed_ok, kProducers * kPerProducer);
  EXPECT_EQ(st.dispatched_stripes, kProducers * kPerProducer);
  EXPECT_EQ(st.pool.tasks_run, kProducers * kPerProducer);
  EXPECT_GE(st.batches, 1u);
  EXPECT_GE(st.mean_batch_stripes(), 1.0);
  EXPECT_GT(st.latency_samples, 0u);
  EXPECT_GE(st.latency_p99_s, st.latency_p50_s);
}

TEST(StripeServiceTest, BatchedDecodeRoundTripsBitIdentically) {
  const StripeShape sh{6, 3, 1024};
  const ec::IsalCodec codec(sh.k, sh.m);
  constexpr std::size_t kStripes = 48;

  StripeSet set(kStripes, sh, 7);
  StripeService service;
  {
    std::vector<std::future<Result>> done;
    for (std::size_t s = 0; s < kStripes; ++s) {
      done.push_back(service.submit(set.encode_request(s, &codec)));
    }
    for (auto& f : done) ASSERT_TRUE(f.get().ok());
  }
  // Keep pristine copies, wipe two blocks per stripe, decode batched.
  StripeSet pristine = set;
  const std::vector<std::size_t> erasures{1, sh.k + 1};
  for (std::size_t s = 0; s < kStripes; ++s) {
    for (const std::size_t e : erasures) {
      std::fill(set.block_vec(s, e).begin(), set.block_vec(s, e).end(),
                std::byte{0xEE});
    }
  }
  {
    std::vector<std::future<Result>> done;
    for (std::size_t s = 0; s < kStripes; ++s) {
      done.push_back(service.submit(set.decode_request(s, erasures, &codec)));
    }
    for (auto& f : done) ASSERT_TRUE(f.get().ok());
  }
  for (std::size_t s = 0; s < kStripes; ++s) {
    for (std::size_t i = 0; i < sh.k + sh.m; ++i) {
      ASSERT_EQ(set.block_vec(s, i), pristine.block_vec(s, i))
          << "stripe " << s << " block " << i;
    }
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.admitted_encode, kStripes);
  EXPECT_EQ(st.admitted_decode, kStripes);
  EXPECT_EQ(st.completed_ok, 2 * kStripes);
}

TEST(StripeServiceTest, QueueFullRejectsImmediately) {
  const StripeShape sh{4, 2, 256};
  GatedFactory gate;
  StripeService::Config cfg;
  cfg.queue_capacity = 4;
  // Keep the class limit out of the way so only the queue bound fires.
  cfg.encode_inflight_limit = 64;
  StripeService service(gate.install(std::move(cfg)));

  // Head request: no codec override, so dispatch stalls in the factory.
  StripeSet set(6, sh, 11);
  std::vector<std::future<Result>> done;
  done.push_back(service.submit(set.encode_request(0)));
  gate.entered.get_future().wait();

  // Dispatcher is stalled: these four sit in the bounded queue...
  for (std::size_t s = 0; s < 4; ++s) {
    done.push_back(service.submit(set.encode_request(1 + s)));
  }
  // ...and the fifth must be rejected without blocking.
  std::future<Result> rejected = service.submit(set.encode_request(5));
  ASSERT_EQ(rejected.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(rejected.get().status, StatusCode::kRejectedQueueFull);

  gate.release.set_value();
  for (auto& f : done) EXPECT_TRUE(f.get().ok());
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected_queue_full, 1u);
  EXPECT_EQ(st.queue_high_water, 4u);
  EXPECT_EQ(st.completed_ok, 5u);
}

TEST(StripeServiceTest, ClassLimitShieldsTheOtherClass) {
  const StripeShape sh{4, 2, 256};
  const ec::IsalCodec codec(sh.k, sh.m);
  GatedFactory gate;
  StripeService::Config cfg;
  cfg.queue_capacity = 16;
  cfg.encode_inflight_limit = 1;
  StripeService service(gate.install(std::move(cfg)));

  // A decodable stripe for the decode-class probe.
  StripeSet set(3, sh, 13);
  {
    std::vector<const std::byte*> data;
    std::vector<std::byte*> parity;
    for (std::size_t i = 0; i < sh.k; ++i) data.push_back(set.block(2, i));
    for (std::size_t j = 0; j < sh.m; ++j) {
      parity.push_back(set.block(2, sh.k + j));
    }
    codec.encode(sh.block_size, data, parity);
  }

  std::future<Result> head = service.submit(set.encode_request(0));
  gate.entered.get_future().wait();

  // Encodes are at their in-flight cap; decodes must still be admitted.
  std::future<Result> second = service.submit(set.encode_request(1));
  ASSERT_EQ(second.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(second.get().status, StatusCode::kRejectedClassLimit);
  std::future<Result> probe =
      service.submit(set.decode_request(2, {1}, &codec));
  EXPECT_NE(probe.wait_for(0s), std::future_status::ready);

  gate.release.set_value();
  EXPECT_TRUE(head.get().ok());
  EXPECT_TRUE(probe.get().ok());
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected_class_limit, 1u);
  EXPECT_EQ(st.admitted_encode, 1u);
  EXPECT_EQ(st.admitted_decode, 1u);
}

TEST(StripeServiceTest, ShutdownDrainCompletesEverythingAdmitted) {
  const StripeShape sh{4, 2, 512};
  const ec::IsalCodec codec(sh.k, sh.m);
  constexpr std::size_t kStripes = 256;
  StripeSet set(kStripes + 1, sh, 17);

  StripeService service;
  std::vector<std::future<Result>> done;
  for (std::size_t s = 0; s < kStripes; ++s) {
    done.push_back(service.submit(set.encode_request(s, &codec)));
  }
  service.shutdown(StripeService::Drain::kDrain);
  for (auto& f : done) EXPECT_TRUE(f.get().ok());

  // Admission is closed now.
  std::future<Result> late = service.submit(set.encode_request(kStripes));
  ASSERT_EQ(late.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(late.get().status, StatusCode::kShutdown);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.completed_ok, kStripes);
  EXPECT_EQ(st.admitted, kStripes);
  EXPECT_EQ(st.rejected_shutdown, 1u);
}

TEST(StripeServiceTest, ShutdownCancelDropsQueuedButFinishesDispatched) {
  const StripeShape sh{4, 2, 256};
  GatedFactory gate;
  StripeService::Config cfg;
  cfg.queue_capacity = 32;
  StripeService service(gate.install(std::move(cfg)));

  constexpr std::size_t kQueued = 8;
  StripeSet set(2 + kQueued, sh, 19);
  std::future<Result> head = service.submit(set.encode_request(0));
  gate.entered.get_future().wait();
  std::vector<std::future<Result>> queued;
  for (std::size_t s = 0; s < kQueued; ++s) {
    queued.push_back(service.submit(set.encode_request(1 + s)));
  }

  std::thread closer(
      [&] { service.shutdown(StripeService::Drain::kCancel); });
  // Hold the dispatcher in the factory until shutdown has demonstrably
  // closed admission (a probe resolves kShutdown immediately) — without
  // this the dispatcher could drain the queue as a normal batch before
  // the closer thread sets the cancel flag. Probes admitted during the
  // race window just join the to-be-cancelled set.
  const std::size_t probe_stripe = 1 + kQueued;
  for (;;) {
    std::future<Result> probe =
        service.submit(set.encode_request(probe_stripe));
    if (probe.wait_for(0s) != std::future_status::ready) {
      queued.push_back(std::move(probe));  // admitted: will be cancelled
      std::this_thread::yield();
      continue;
    }
    const Result res = probe.get();
    if (res.status == StatusCode::kShutdown) break;
    EXPECT_EQ(res.status, StatusCode::kRejectedQueueFull);
    std::this_thread::yield();
  }
  gate.release.set_value();
  closer.join();

  EXPECT_TRUE(head.get().ok());  // already dispatched: must finish
  for (auto& f : queued) {
    EXPECT_EQ(f.get().status, StatusCode::kCancelled);
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.cancelled, queued.size());
  EXPECT_GE(st.cancelled, kQueued);
  EXPECT_EQ(st.completed_ok, 1u);
}

TEST(StripeServiceTest, PerRequestFailureStatuses) {
  const StripeShape sh{2, 1, 128};
  const UndecodableCodec bad(sh.k, sh.m);
  StripeService service;
  StripeSet set(2, sh, 23);

  // Codec-level decode failure surfaces on that request only.
  std::future<Result> failed =
      service.submit(set.decode_request(0, {0}, &bad));
  EXPECT_EQ(failed.get().status, StatusCode::kDecodeFailed);

  // Malformed requests resolve immediately as kInvalidArgument.
  EncodeRequest wrong_counts = set.encode_request(1);
  wrong_counts.data.pop_back();
  EXPECT_EQ(service.submit(std::move(wrong_counts)).get().status,
            StatusCode::kInvalidArgument);
  DecodeRequest bad_erasure = set.decode_request(1, {sh.k + sh.m});
  EXPECT_EQ(service.submit(std::move(bad_erasure)).get().status,
            StatusCode::kInvalidArgument);
  EncodeRequest mismatched = set.encode_request(1, &bad);
  mismatched.shape = {3, 1, 128};  // override codec is (2, 1)
  EXPECT_EQ(service.submit(std::move(mismatched)).get().status,
            StatusCode::kInvalidArgument);

  // The service keeps serving after per-request failures.
  const ec::IsalCodec good(sh.k, sh.m);
  EXPECT_TRUE(service.submit(set.encode_request(1, &good)).get().ok());
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.decode_failed, 1u);
  EXPECT_EQ(st.invalid, 3u);
  EXPECT_EQ(st.completed_ok, 1u);
}

TEST(StripeServiceTest, RollingPatternFeedsAdaptiveLayer) {
  const StripeShape major{6, 3, 1024};
  const StripeShape minor{4, 2, 512};
  const ec::IsalCodec major_codec(major.k, major.m);
  const ec::IsalCodec minor_codec(minor.k, minor.m);

  StripeService service;
  StripeSet major_set(12, major, 29);
  StripeSet minor_set(4, minor, 31);
  std::vector<std::future<Result>> done;
  for (std::size_t s = 0; s < major_set.size(); ++s) {
    done.push_back(service.submit(major_set.encode_request(s, &major_codec)));
  }
  for (std::size_t s = 0; s < minor_set.size(); ++s) {
    done.push_back(service.submit(minor_set.encode_request(s, &minor_codec)));
  }
  for (auto& f : done) ASSERT_TRUE(f.get().ok());

  const dialga::PatternInfo pattern = service.pattern();
  EXPECT_EQ(pattern.k, major.k);
  EXPECT_EQ(pattern.m, major.m);
  EXPECT_EQ(pattern.block_size, major.block_size);
  EXPECT_EQ(pattern.nthreads, service.pool().worker_count());

  // The adaptive provider re-keys its strategy off the live mix.
  const dialga::DialgaCodec adaptive(major.k, major.m);
  simmem::SimConfig sim;
  auto provider = adaptive.make_encode_provider(
      {major.k, major.m, /*block_size=*/512, /*nthreads=*/1}, sim);
  service.feed_pattern(*provider);
  EXPECT_EQ(provider->coordinator().pattern().block_size, major.block_size);
  EXPECT_EQ(provider->coordinator().pattern().nthreads,
            service.pool().worker_count());
}

TEST(StripeServiceTest, ExternalPoolIsSharedNotOwned) {
  ec::ThreadPool pool(2);
  const StripeShape sh{4, 2, 256};
  const ec::IsalCodec codec(sh.k, sh.m);
  StripeSet set(8, sh, 37);
  {
    StripeService service(StripeService::Config{}, pool);
    EXPECT_EQ(&service.pool(), &pool);
    std::vector<std::future<Result>> done;
    for (std::size_t s = 0; s < set.size(); ++s) {
      done.push_back(service.submit(set.encode_request(s, &codec)));
    }
    for (auto& f : done) EXPECT_TRUE(f.get().ok());
    EXPECT_EQ(service.stats().pool.tasks_run, set.size());
  }
  // Service destruction must leave the external pool usable.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16u);
}

TEST(ServiceStatsTest, BatchBucketEdgeCases) {
  // One-stripe batches land in bucket 0, [1, 2).
  EXPECT_EQ(ServiceStats::BatchBucketIndex(1), 0u);
  // Degenerate input: 0 stripes also maps to bucket 0 (never happens —
  // FormBatches emits no empty batch — but must not underflow).
  EXPECT_EQ(ServiceStats::BatchBucketIndex(0), 0u);
  // Power-of-two boundaries: bucket i covers [2^i, 2^(i+1)).
  EXPECT_EQ(ServiceStats::BatchBucketIndex(2), 1u);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(3), 1u);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(4), 2u);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(1023), 9u);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(1024), 10u);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(2047), 10u);
  // Saturation: everything at or beyond 2^(kBatchBuckets-1) = 2048
  // absorbs into the last bucket instead of indexing past the array.
  const std::size_t last = ServiceStats::kBatchBuckets - 1;
  EXPECT_EQ(ServiceStats::BatchBucketIndex(2048), last);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(4096), last);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(std::size_t{1} << 20), last);
  EXPECT_EQ(ServiceStats::BatchBucketIndex(SIZE_MAX), last);
}

TEST(StripeServiceTest, BatchHistogramCountsOneStripeBatches) {
  // A single submitted stripe dispatches as a 1-stripe batch and must
  // land in histogram bucket 0 — not vanish into an off-by-one.
  const StripeShape sh{4, 2, 256};
  const ec::IsalCodec codec(sh.k, sh.m);
  StripeSet set(1, sh, 11);
  StripeService service;
  ASSERT_TRUE(service.submit(set.encode_request(0, &codec)).get().ok());
  service.shutdown();
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batch_size_log2[0], 1u);
  std::uint64_t total = 0;
  for (const auto c : s.batch_size_log2) total += c;
  EXPECT_EQ(total, s.batches);
}

TEST(StripeServiceTest, StatsSnapshotsStayCoherentUnderConcurrentScrapes) {
  // Satellite invariant: a scrape taken at ANY point while producers
  // and completions race must never observe completions outrunning
  // admissions — stats() reads every counter under one lock
  // acquisition. Run under TSan this also proves the scrape path is
  // race-free against the dispatcher and completion hooks.
  const StripeShape sh{4, 2, 256};
  const ec::IsalCodec codec(sh.k, sh.m);
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 64;
  std::vector<std::unique_ptr<StripeSet>> sets;
  for (std::size_t t = 0; t < kProducers; ++t) {
    sets.push_back(
        std::make_unique<StripeSet>(kPerProducer, sh, 100 + unsigned(t)));
  }
  StripeService::Config cfg;
  cfg.queue_capacity = 16;  // small queue: rejections exercised too
  StripeService service(std::move(cfg));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServiceStats s = service.stats();
      const std::uint64_t settled = s.completed_ok + s.decode_failed +
                                    s.codec_errors + s.cancelled +
                                    s.deadline_exceeded;
      EXPECT_LE(settled, s.admitted);
      EXPECT_EQ(s.admitted, s.admitted_encode + s.admitted_decode);
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t s = 0; s < kPerProducer; ++s) {
        service.submit(sets[t]->encode_request(s, &codec)).get();
      }
    });
  }
  for (auto& p : producers) p.join();
  service.shutdown();
  stop.store(true);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  // Quiesced: everything admitted has settled, nothing double-counted.
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.completed_ok + s.decode_failed + s.codec_errors +
                s.cancelled + s.deadline_exceeded,
            s.admitted);
}

TEST(StripeServiceTest, TraceSpansFollowTheLifecycle) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.clear();
  tracer.set_enabled(true);
  const StripeShape sh{4, 2, 256};
  const ec::IsalCodec codec(sh.k, sh.m);
  StripeSet set(8, sh, 21);
  {
    StripeService service;
    std::vector<std::future<Result>> done;
    for (std::size_t s = 0; s < set.size(); ++s) {
      done.push_back(service.submit(set.encode_request(s, &codec)));
    }
    for (auto& f : done) EXPECT_TRUE(f.get().ok());
    service.shutdown();
  }
  tracer.set_enabled(false);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), set.size());
  for (const auto& span : spans) {
    EXPECT_EQ(span.op, "encode");
    EXPECT_EQ(span.status, "ok");
    // Every stage was reached, in pipeline order.
    EXPECT_GE(span.queue_s, 0.0);
    EXPECT_LE(span.queue_s, span.batch_s);
    EXPECT_LE(span.batch_s, span.exec_s);
    EXPECT_LE(span.exec_s, span.total_s);
  }
  tracer.clear();
}

}  // namespace
}  // namespace svc
