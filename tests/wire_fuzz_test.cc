// Hostile-input suite for the cluster wire codec: round-trips,
// truncation at every byte boundary, seeded random mutation, and
// adversarial size fields. The contract under test — DecodeFrame
// never crashes, never reads out of bounds (the CI chaos job runs
// this under ASan+UBSan), and never allocates more than a frame's
// bounds-checked declared sizes.
#include "cluster/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "integrity/checksum.h"

namespace {

using cluster::Blob;
using cluster::DecodeFrame;
using cluster::EncodeFrame;
using cluster::Frame;
using cluster::MsgType;
using cluster::ParseStatus;
using cluster::WireStatus;

Frame SampleFrame() {
  Frame f;
  f.type = MsgType::kEncode;
  f.seq = 0x0123456789abcdefull;
  f.stripe = 42;
  f.shard = 3;
  f.status = WireStatus::kStoreFailed;
  f.aux = 7;
  f.geom = {.k = 4, .global = 2, .local = 2, .block_size = 4096};
  f.placement = {1, 2, 3, 4, 5, 6, 7, 8};
  for (std::uint32_t i = 0; i < 3; ++i) {
    Blob b;
    b.index = i;
    b.bytes.assign(64 + i, std::byte{static_cast<unsigned char>(i + 1)});
    f.blocks.push_back(std::move(b));
  }
  return f;
}

bool FramesEqual(const Frame& a, const Frame& b) {
  if (a.type != b.type || a.seq != b.seq || a.stripe != b.stripe ||
      a.shard != b.shard || a.status != b.status || a.aux != b.aux ||
      !(a.geom == b.geom) || a.placement != b.placement ||
      a.blocks.size() != b.blocks.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].index != b.blocks[i].index ||
        a.blocks[i].bytes != b.blocks[i].bytes) {
      return false;
    }
  }
  return true;
}

TEST(WireTest, RoundTrip) {
  const Frame f = SampleFrame();
  const auto bytes = EncodeFrame(f);
  Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes, &out, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_TRUE(FramesEqual(f, out));
}

TEST(WireTest, RoundTripEveryType) {
  for (std::uint8_t t = 1; t <= 12; ++t) {
    Frame f;
    f.type = static_cast<MsgType>(t);
    f.seq = t;
    const auto bytes = EncodeFrame(f);
    Frame out;
    ASSERT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kOk) << int(t);
    EXPECT_EQ(out.type, f.type);
  }
}

TEST(WireTest, EmptyFrameFields) {
  Frame f;  // all defaults
  const auto bytes = EncodeFrame(f);
  Frame out;
  ASSERT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kOk);
  EXPECT_TRUE(FramesEqual(f, out));
}

TEST(WireFuzzTest, TruncationAtEveryLength) {
  const auto bytes = EncodeFrame(SampleFrame());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame out;
    const ParseStatus st =
        DecodeFrame(std::span<const std::byte>(bytes.data(), len), &out,
                    nullptr);
    // A prefix is either recognizably incomplete or (if the cut hits
    // inside a length field's claim) malformed — never kOk.
    EXPECT_NE(st, ParseStatus::kOk) << "prefix length " << len;
  }
}

TEST(WireFuzzTest, TrailingGarbageRejected) {
  auto bytes = EncodeFrame(SampleFrame());
  bytes.push_back(std::byte{0xaa});
  Frame out;
  // DecodeFrame parses ONE frame; extra bytes past the declared length
  // are the caller's (a stream would start the next frame there), so a
  // single-frame parse of the padded buffer reports the true length.
  std::size_t consumed = 0;
  const ParseStatus st = DecodeFrame(bytes, &out, &consumed);
  if (st == ParseStatus::kOk) {
    EXPECT_EQ(consumed, bytes.size() - 1);
  } else {
    EXPECT_EQ(st, ParseStatus::kMalformed);
  }
}

TEST(WireFuzzTest, BadMagicVersionType) {
  const auto good = EncodeFrame(SampleFrame());
  {
    auto bytes = good;
    bytes[0] = std::byte{0x00};  // magic low byte
    Frame out;
    EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed);
  }
  {
    auto bytes = good;
    bytes[2] = std::byte{99};  // version
    Frame out;
    EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed);
  }
  {
    auto bytes = good;
    bytes[3] = std::byte{0};  // type 0 invalid
    Frame out;
    EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed);
  }
  {
    auto bytes = good;
    bytes[3] = std::byte{200};  // type out of range
    Frame out;
    EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed);
  }
}

TEST(WireFuzzTest, HugeDeclaredBodyIsMalformedNotAllocated) {
  // Header claiming a body far past kMaxWireBody must be rejected from
  // the 8 header bytes alone.
  std::vector<std::byte> bytes(8);
  bytes[0] = std::byte{0x17};
  bytes[1] = std::byte{0xDC};
  bytes[2] = std::byte{1};  // version
  bytes[3] = std::byte{11}; // kHeartbeat
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + 4, &huge, 4);
  Frame out;
  EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed);
}

TEST(WireFuzzTest, HugeCountsInsideBodyRejected) {
  // Corrupt the placement count inside a valid frame to claim more
  // entries than the body holds. The body checksum is recomputed after
  // the mutation so the count-bound check itself is what rejects the
  // frame, not the CRC.
  Frame f = SampleFrame();
  f.blocks.clear();
  auto bytes = EncodeFrame(f);
  // Body starts at offset 12 (v2 header); placement count sits after
  // seq(8) + stripe(8) + shard(4) + status(4) + aux(8) + geom(16).
  const std::size_t count_off = 12 + 48;
  ASSERT_LT(count_off + 4, bytes.size());
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(bytes.data() + count_off, &huge, 4);
  const std::uint32_t sum =
      integrity::Crc32c(bytes.data() + 12, bytes.size() - 12);
  std::memcpy(bytes.data() + 8, &sum, 4);
  Frame out;
  EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed);
}

TEST(WireFuzzTest, BodyBitFlipFailsChecksum) {
  // A single flipped bit anywhere in a v2 body — including deep inside
  // a chunk's bytes, where no structural field would notice — must be
  // kMalformed at the codec, never silently-wrong payload downstream.
  const auto good = EncodeFrame(SampleFrame());
  for (std::size_t bit : {0u, 1u, 7u}) {
    for (std::size_t off = 12; off < good.size(); off += 37) {
      auto bytes = good;
      bytes[off] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      Frame out;
      EXPECT_EQ(DecodeFrame(bytes, &out, nullptr), ParseStatus::kMalformed)
          << "offset " << off << " bit " << bit;
    }
  }
}

TEST(WireTest, LegacyVersion1FrameStillParses) {
  // Mixed-version interop: a v1 frame (8-byte header, no body CRC)
  // built by an old peer must still decode.
  const Frame f = SampleFrame();
  const auto v2 = EncodeFrame(f);
  std::vector<std::byte> v1;
  v1.insert(v1.end(), v2.begin(), v2.begin() + 8);
  v1[2] = std::byte{1};  // version
  v1.insert(v1.end(), v2.begin() + 12, v2.end());  // body, sans CRC
  Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(v1, &out, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, v1.size());
  EXPECT_TRUE(FramesEqual(f, out));
}

TEST(WireFuzzTest, SeededRandomMutationsNeverCrash) {
  const auto good = EncodeFrame(SampleFrame());
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> val(0, 255);
  for (int iter = 0; iter < 20000; ++iter) {
    auto bytes = good;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips; ++i) {
      bytes[pos(rng)] = std::byte{static_cast<unsigned char>(val(rng))};
    }
    Frame out;
    std::size_t consumed = 0;
    const ParseStatus st = DecodeFrame(bytes, &out, &consumed);
    if (st == ParseStatus::kOk) {
      // Whatever parsed must respect the protocol bounds.
      EXPECT_LE(out.placement.size(), cluster::kMaxWireShards);
      EXPECT_LE(out.blocks.size(), cluster::kMaxWireShards);
      for (const Blob& b : out.blocks) {
        EXPECT_LE(b.bytes.size(), cluster::kMaxWireBlock);
      }
      EXPECT_LE(consumed, bytes.size());
    }
  }
}

TEST(WireFuzzTest, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(424242);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::byte> bytes(rng() % 256);
    for (auto& b : bytes) {
      b = std::byte{static_cast<unsigned char>(rng() & 0xff)};
    }
    Frame out;
    DecodeFrame(bytes, &out, nullptr);  // must simply not crash
  }
}

TEST(WireFuzzTest, StreamOfFramesParsesSequentially) {
  // consumed lets a stream transport peel frames off a buffer.
  std::vector<std::byte> stream;
  std::vector<Frame> frames;
  for (int i = 0; i < 5; ++i) {
    Frame f = SampleFrame();
    f.seq = static_cast<std::uint64_t>(i);
    const auto bytes = EncodeFrame(f);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    frames.push_back(std::move(f));
  }
  std::span<const std::byte> rest(stream);
  for (int i = 0; i < 5; ++i) {
    Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(rest, &out, &consumed), ParseStatus::kOk) << i;
    EXPECT_TRUE(FramesEqual(frames[i], out)) << i;
    rest = rest.subspan(consumed);
  }
  EXPECT_TRUE(rest.empty());
}

}  // namespace
