#include "ec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ec {
namespace {

TEST(ThreadPool, DefaultWorkerCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), ThreadPool::DefaultWorkerCount());
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t jobs = 500;
  std::vector<std::atomic<int>> hits(jobs);
  pool.parallel_for(jobs, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_run, jobs);
  EXPECT_EQ(s.tasks_skipped, 0u);
  EXPECT_EQ(s.parallel_fors, 1u);
}

TEST(ThreadPool, SingleWorkerIsDeterministicInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, EmptyParallelForIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
  EXPECT_EQ(pool.stats().parallel_fors, 0u);
}

TEST(ThreadPool, StealsUnderSkewedJobCosts) {
  ThreadPool pool(2);
  // Round-robin dealing puts even indices on worker 0. Job 0 pins that
  // worker for a while, so worker 1 must steal the remaining even jobs
  // after draining its own cheap odd ones.
  pool.parallel_for(32, [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_run, 32u);
  EXPECT_GE(s.steals, 1u);
}

TEST(ThreadPool, WorkersPersistAcrossCalls) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  const auto record = [&](std::size_t) {
    std::lock_guard<std::mutex> lk(mu);
    ids.insert(std::this_thread::get_id());
  };
  for (int round = 0; round < 4; ++round) pool.parallel_for(16, record);
  // Every executing thread across all rounds was one of the two
  // persistent workers — no per-call thread construction.
  EXPECT_LE(ids.size(), pool.worker_count());
  EXPECT_GE(ids.size(), 1u);
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.parallel_fors, 4u);
  EXPECT_EQ(s.tasks_run, 64u);
}

TEST(ThreadPool, RethrowsFirstExceptionAfterQuiescence) {
  ThreadPool pool(1);
  std::vector<std::size_t> ran;
  try {
    pool.parallel_for(10, [&](std::size_t i) {
      if (i == 2) throw std::runtime_error("job 2 failed");
      ran.push_back(i);
    });
    FAIL() << "exception must propagate to the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2 failed");
  }
  // Single worker, in-order: jobs 0 and 1 ran, the rest were skipped
  // once the call was cancelled.
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1}));
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_run, 3u);  // includes the throwing body
  EXPECT_EQ(s.tasks_skipped, 7u);
}

TEST(ThreadPool, UsableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t i) {
                     if (i == 5) throw std::logic_error("once");
                   }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NonExceptionThrowPropagatesToo) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [](std::size_t i) {
                                   if (i == 1) throw 42;  // NOLINT
                                 }),
               int);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(2, [&](std::size_t) {
    pool.parallel_for(3, [&](std::size_t) {
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 6);
}

TEST(ThreadPool, NestedExceptionStillReachesOuterCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(1,
                        [&](std::size_t) {
                          pool.parallel_for(2, [](std::size_t j) {
                            if (j == 1) throw std::runtime_error("inner");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, TracksMaxQueueDepth) {
  ThreadPool pool(1);
  // All eight tasks are dealt to the single worker's queue under one
  // lock hold, so the high-water mark is exactly the job count.
  pool.parallel_for(8, [](std::size_t) {});
  EXPECT_EQ(pool.stats().max_queue_depth, 8u);
}

TEST(ThreadPool, StatsDeltaAttributesOneWindow) {
  ThreadPool pool(2);
  pool.parallel_for(10, [](std::size_t) {});
  const ThreadPoolStats before = pool.stats();
  pool.parallel_for(25, [](std::size_t) {});
  const ThreadPoolStats delta = pool.stats() - before;
  EXPECT_EQ(delta.tasks_run, 25u);
  EXPECT_EQ(delta.parallel_fors, 1u);
}

TEST(ThreadPool, SharedPoolIsSingleInstance) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.worker_count(), ThreadPool::DefaultWorkerCount());
  std::atomic<int> count{0};
  a.parallel_for(32, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ManyConcurrentRoundsShutDownCleanly) {
  // Construction/destruction churn with queued work: the destructor
  // must drain and join without hanging or dropping tasks.
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(200, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 200);
  }
}

}  // namespace
}  // namespace ec
