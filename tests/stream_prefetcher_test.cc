#include "simmem/stream_prefetcher.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace simmem {
namespace {

PrefetcherConfig TestCfg() {
  PrefetcherConfig cfg;
  cfg.stream_capacity = 4;
  cfg.min_confidence = 2;
  cfg.max_degree = 4;
  return cfg;
}

/// Feed a sequential stream of `n` lines starting at `first`; returns
/// all prefetch candidates.
std::vector<std::uint64_t> FeedSequential(StreamPrefetcher& pf,
                                          std::uint64_t first,
                                          std::size_t n) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < n; ++i) pf.observe(first + i, &out);
  return out;
}

TEST(StreamPrefetcher, NoPrefetchBeforeConfidence) {
  StreamPrefetcher pf(TestCfg());
  std::vector<std::uint64_t> out;
  pf.observe(100, &out);
  pf.observe(101, &out);  // confidence 1 < 2
  EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, PrefetchesAheadOnceConfident) {
  StreamPrefetcher pf(TestCfg());
  const auto out = FeedSequential(pf, 100, 4);
  // Access 102 reaches confidence 2 -> prefetch 103; access 103 ->
  // confidence 3, degree 2 -> prefetch up to 105 (104, 105).
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), 103u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  // No duplicates: max_pf_line advances monotonically.
  EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
}

TEST(StreamPrefetcher, DegreeRampsWithConfidence) {
  StreamPrefetcher pf(TestCfg());
  std::vector<std::uint64_t> out;
  FeedSequential(pf, 0, 10);
  const std::uint64_t issued_10 = pf.issued();
  StreamPrefetcher pf2(TestCfg());
  FeedSequential(pf2, 0, 5);
  const std::uint64_t issued_5 = pf2.issued();
  EXPECT_GT(issued_10, issued_5);
}

TEST(StreamPrefetcher, StopsAtPageBoundary) {
  StreamPrefetcher pf(TestCfg());
  // Lines 60..63 are the last lines of page 0 (64 lines per page).
  const auto out = FeedSequential(pf, 58, 6);
  for (const std::uint64_t line : out) {
    EXPECT_LT(line, 64u) << "prefetch crossed the 4 KiB boundary";
  }
}

TEST(StreamPrefetcher, NewPageStartsColdStream) {
  StreamPrefetcher pf(TestCfg());
  FeedSequential(pf, 0, 64);  // page 0, fully confident
  std::vector<std::uint64_t> out;
  pf.observe(64, &out);  // first line of page 1
  EXPECT_TRUE(out.empty()) << "confidence must not carry across pages";
}

TEST(StreamPrefetcher, NonSequentialDeltaResetsConfidence) {
  StreamPrefetcher pf(TestCfg());
  std::vector<std::uint64_t> out;
  FeedSequential(pf, 0, 8);  // confident stream in page 0
  out.clear();
  pf.observe(20, &out);  // jump within the same page
  EXPECT_TRUE(out.empty());
  pf.observe(21, &out);  // confidence restarts from 0
  EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, ShuffledAccessesNeverTrigger) {
  // DIALGA's shuffle defeat: strided (non +1) order within a page.
  StreamPrefetcher pf(TestCfg());
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < 64; ++i) {
    pf.observe((i * 13) % 64, &out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pf.issued(), 0u);
}

TEST(StreamPrefetcher, CapacityEvictionKillsTraining) {
  // Observation 3: more concurrent streams than table entries ->
  // each stream is evicted before gaining confidence -> no prefetches.
  StreamPrefetcher pf(TestCfg());  // capacity 4
  std::vector<std::uint64_t> out;
  // 8 interleaved streams (pages 0..7), round-robin accesses.
  for (std::size_t step = 0; step < 16; ++step) {
    for (std::size_t s = 0; s < 8; ++s) {
      pf.observe(s * 64 + step, &out);
    }
  }
  EXPECT_TRUE(out.empty()) << "streams beyond capacity must not train";
}

TEST(StreamPrefetcher, AtCapacityStreamsStillTrain) {
  StreamPrefetcher pf(TestCfg());  // capacity 4
  std::vector<std::uint64_t> out;
  for (std::size_t step = 0; step < 16; ++step) {
    for (std::size_t s = 0; s < 4; ++s) {
      pf.observe(s * 64 + step, &out);
    }
  }
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(pf.active_streams(), 4u);
}

TEST(StreamPrefetcher, DisableStopsEverything) {
  StreamPrefetcher pf(TestCfg());
  pf.set_enabled(false);
  std::vector<std::uint64_t> out;
  FeedSequential(pf, 0, 32);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pf.issued(), 0u);
  pf.set_enabled(true);
  const auto out2 = FeedSequential(pf, 128, 8);
  EXPECT_FALSE(out2.empty());
}

TEST(StreamPrefetcher, SameLineReaccessIsIgnored) {
  StreamPrefetcher pf(TestCfg());
  std::vector<std::uint64_t> out;
  FeedSequential(pf, 0, 4);
  const std::uint64_t before = pf.issued();
  pf.observe(3, &out);  // repeat the last line
  pf.observe(3, &out);
  EXPECT_EQ(pf.issued(), before);
}

TEST(StreamPrefetcher, ResetClearsStreams) {
  StreamPrefetcher pf(TestCfg());
  FeedSequential(pf, 0, 8);
  EXPECT_GT(pf.active_streams(), 0u);
  pf.reset();
  EXPECT_EQ(pf.active_streams(), 0u);
}

TEST(StreamPrefetcher, DefaultConfigMatchesObservation4) {
  // With the calibrated defaults, a 512 B block (8 lines) must never
  // trigger prefetching while a 4 KiB block (64 lines) must.
  StreamPrefetcher small{PrefetcherConfig{}};
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < 8; ++i) small.observe(i, &out);
  EXPECT_TRUE(out.empty());

  StreamPrefetcher large{PrefetcherConfig{}};
  for (std::size_t i = 0; i < 64; ++i) large.observe(i, &out);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace simmem
