// Cross-cutting property sweeps: every codec must round-trip every
// random erasure pattern at every shape; plans must keep their
// structural invariants under every option combination; and the
// simulator must respond monotonically to its physical knobs.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "bench_util/runner.h"
#include "dialga/dialga.h"
#include "ec/isal.h"
#include "ec/isal_decompose.h"
#include "ec/xor_codec.h"

namespace {

enum class Kind { kIsal, kIsalVandermonde, kIsalD, kZerasure, kCerasure,
                  kDialga };

std::unique_ptr<ec::Codec> Make(Kind kind, std::size_t k, std::size_t m) {
  switch (kind) {
    case Kind::kIsal:
      return std::make_unique<ec::IsalCodec>(k, m);
    case Kind::kIsalVandermonde:
      return std::make_unique<ec::IsalCodec>(k, m, ec::SimdWidth::kAvx512,
                                             ec::GeneratorKind::kVandermonde);
    case Kind::kIsalD:
      return std::make_unique<ec::IsalDecomposeCodec>(k, m, 5);
    case Kind::kZerasure:
      return ec::MakeZerasure(k, m, 4);
    case Kind::kCerasure:
      return ec::MakeCerasure(k, m, 5);
    case Kind::kDialga:
      return std::make_unique<dialga::DialgaCodec>(k, m);
  }
  return nullptr;
}

class CodecPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<int, std::pair<std::size_t, std::size_t>>> {};

TEST_P(CodecPropertyTest, RandomErasurePatternsRoundTrip) {
  const auto [kind_int, shape] = GetParam();
  const auto [k, m] = shape;
  const auto codec = Make(static_cast<Kind>(kind_int), k, m);
  ASSERT_NE(codec, nullptr);
  const std::size_t bs = 512;

  std::mt19937_64 rng(k * 1000 + m);
  std::vector<std::vector<std::byte>> blocks(k + m,
                                             std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& b : blocks[i]) b = static_cast<std::byte>(rng());
  std::vector<const std::byte*> data;
  std::vector<std::byte*> parity, all;
  for (std::size_t i = 0; i < k; ++i) data.push_back(blocks[i].data());
  for (std::size_t j = 0; j < m; ++j) parity.push_back(blocks[k + j].data());
  for (auto& b : blocks) all.push_back(b.data());

  codec->encode(bs, data, parity);
  const auto golden = blocks;

  for (int trial = 0; trial < 8; ++trial) {
    // Random erasure count in [1, m], random pattern.
    std::vector<std::size_t> idx(k + m);
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), rng);
    const std::size_t count = 1 + rng() % m;
    std::vector<std::size_t> erasures(idx.begin(), idx.begin() + count);
    for (const std::size_t e : erasures)
      std::fill(blocks[e].begin(), blocks[e].end(), std::byte{0xCC});
    ASSERT_TRUE(codec->decode(bs, all, erasures))
        << codec->name() << " trial " << trial;
    ASSERT_EQ(blocks, golden) << codec->name() << " trial " << trial;
  }
}

TEST_P(CodecPropertyTest, PlanStructuralInvariants) {
  const auto [kind_int, shape] = GetParam();
  const auto [k, m] = shape;
  const auto codec = Make(static_cast<Kind>(kind_int), k, m);
  ASSERT_NE(codec, nullptr);
  const simmem::ComputeCost cost{};

  for (const std::size_t bs : {256u, 1024u, 4096u}) {
    const ec::EncodePlan plan = codec->encode_plan(bs, cost);
    EXPECT_EQ(plan.block_size, bs);
    EXPECT_EQ(plan.num_data, k);
    EXPECT_GE(plan.num_parity, m);
    EXPECT_EQ(plan.data_bytes(), k * bs);
    // Every non-compute op stays inside the declared slot space and
    // block bounds.
    for (const ec::PlanOp& op : plan.ops) {
      if (op.kind == ec::PlanOp::Kind::kCompute) continue;
      EXPECT_LT(op.block, plan.num_slots());
      EXPECT_LT(op.offset, bs);
    }
    // Encoding must read every data line at least once and cover every
    // parity line with NT stores (XOR codecs may store sub-line
    // packets, so per-line counts can exceed one).
    std::map<std::pair<std::uint16_t, std::uint32_t>, int> loads, stores;
    for (const ec::PlanOp& op : plan.ops) {
      if (op.kind == ec::PlanOp::Kind::kLoad && op.block < k)
        ++loads[{op.block, op.offset / 64 * 64}];
      if (op.kind == ec::PlanOp::Kind::kStore && op.block >= k &&
          op.block < k + plan.num_parity)
        ++stores[{op.block, op.offset / 64 * 64}];
    }
    EXPECT_EQ(loads.size(), k * bs / 64) << codec->name();
    EXPECT_EQ(stores.size(), plan.num_parity * bs / 64) << codec->name();
    EXPECT_GT(plan.total_compute_cycles(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecPropertyTest,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(Kind::kIsal),
                          static_cast<int>(Kind::kIsalVandermonde),
                          static_cast<int>(Kind::kIsalD),
                          static_cast<int>(Kind::kZerasure),
                          static_cast<int>(Kind::kCerasure),
                          static_cast<int>(Kind::kDialga)),
        ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                          std::pair<std::size_t, std::size_t>{9, 3},
                          std::pair<std::size_t, std::size_t>{12, 4})));

// ---------------------------------------------------------------------
// Simulator monotonicity: physical knobs must move throughput the
// obvious direction.
// ---------------------------------------------------------------------

double EncodeGbps(const simmem::SimConfig& cfg, std::size_t threads = 1,
                  std::size_t bs = 1024) {
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = bs;
  wl.threads = threads;
  wl.total_data_bytes = (4 + 2 * threads) << 20;
  const ec::IsalCodec codec(12, 4);
  return bench_util::RunEncode(cfg, wl, codec).gbps;
}

TEST(SimMonotonicity, SlowerMediaIsSlower) {
  simmem::SimConfig fast, slow;
  slow.pm.media_latency_ns *= 2.0;
  EXPECT_GT(EncodeGbps(fast), EncodeGbps(slow));
}

TEST(SimMonotonicity, SlowerBufferIsSlower) {
  simmem::SimConfig fast, slow;
  slow.pm.buffer_hit_latency_ns *= 2.0;
  EXPECT_GT(EncodeGbps(fast), EncodeGbps(slow));
}

TEST(SimMonotonicity, HigherFrequencyIsFasterOnDram) {
  simmem::SimConfig lo, hi;
  lo.cpu_freq_ghz = 1.0;
  hi.cpu_freq_ghz = 3.3;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 4 << 20;
  wl.data_kind = simmem::MemKind::kDram;
  wl.parity_kind = simmem::MemKind::kDram;
  const ec::IsalCodec codec(12, 4);
  EXPECT_GT(bench_util::RunEncode(hi, wl, codec).gbps,
            bench_util::RunEncode(lo, wl, codec).gbps);
}

TEST(SimMonotonicity, FrequencyMattersLessOnPm) {
  // Observation 2: PM encode gains less from frequency than DRAM.
  auto gain = [](simmem::MemKind kind) {
    simmem::SimConfig lo, hi;
    lo.cpu_freq_ghz = 1.0;
    hi.cpu_freq_ghz = 3.3;
    bench_util::WorkloadConfig wl;
    wl.k = 12;
    wl.m = 4;
    wl.block_size = 1024;
    wl.total_data_bytes = 4 << 20;
    wl.data_kind = kind;
    wl.parity_kind = kind;
    const ec::IsalCodec codec(12, 4);
    return bench_util::RunEncode(hi, wl, codec).gbps /
           bench_util::RunEncode(lo, wl, codec).gbps;
  };
  EXPECT_GT(gain(simmem::MemKind::kDram), gain(simmem::MemKind::kPm));
}

TEST(SimMonotonicity, ThreadsScaleUntilSaturation) {
  const simmem::SimConfig cfg;
  EXPECT_GT(EncodeGbps(cfg, 4), EncodeGbps(cfg, 1) * 2.0);
}

TEST(SimMonotonicity, PrefetcherHelpsLargeBlocksOnly) {
  // Observation 4's boundary, as a regression test on the calibration.
  const simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.total_data_bytes = 8 << 20;
  const ec::IsalCodec codec(12, 4);

  wl.block_size = 512;
  const double small_on = bench_util::RunEncode(cfg, wl, codec, true).gbps;
  const double small_off = bench_util::RunEncode(cfg, wl, codec, false).gbps;
  EXPECT_NEAR(small_on / small_off, 1.0, 0.05)
      << "512 B blocks must see no prefetcher effect";

  wl.block_size = 4096;
  const double big_on = bench_util::RunEncode(cfg, wl, codec, true).gbps;
  const double big_off = bench_util::RunEncode(cfg, wl, codec, false).gbps;
  EXPECT_GT(big_on / big_off, 1.5)
      << "4 KiB blocks must benefit strongly from the prefetcher";
}

TEST(SimMonotonicity, MoreParityMeansSlowerEncode) {
  const simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.block_size = 1024;
  wl.total_data_bytes = 4 << 20;
  double prev = 1e9;
  for (const std::size_t m : {2u, 4u, 8u}) {
    wl.m = m;
    const ec::IsalCodec codec(12, m);
    const double gbps = bench_util::RunEncode(cfg, wl, codec).gbps;
    EXPECT_LT(gbps, prev) << "m=" << m;
    prev = gbps;
  }
}

}  // namespace
