#include "repair/rebuild.h"

#include <gtest/gtest.h>

#include "dialga/dialga.h"
#include "ec/isal.h"

namespace repair {
namespace {

bench_util::WorkloadConfig SmallWl() {
  bench_util::WorkloadConfig wl;
  wl.k = 8;
  wl.m = 3;
  wl.block_size = 1024;
  wl.total_data_bytes = 4 << 20;  // 512 stripes
  return wl;
}

TEST(Rebuild, CompletesAndAccounts) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig rc;
  rc.threads = 2;
  rc.batch_stripes = 50;

  std::size_t callbacks = 0;
  std::size_t last_done = 0;
  const RebuildProgress p = RunRebuild(
      codec, cfg, SmallWl(), /*failed_block=*/2, rc,
      [&](const RebuildProgress& pr) {
        ++callbacks;
        EXPECT_GE(pr.stripes_done, last_done);
        last_done = pr.stripes_done;
      });

  EXPECT_EQ(p.stripes_total, 512u);
  EXPECT_EQ(p.stripes_done, 512u);
  EXPECT_EQ(p.bytes_rebuilt, 512u * 1024u);
  EXPECT_DOUBLE_EQ(p.fraction(), 1.0);
  EXPECT_GT(p.gbps, 0.0);
  EXPECT_GE(callbacks, 5u);  // 512 stripes / (2 threads x 50) batches
}

TEST(Rebuild, ThrottleCapsRate) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig fast;
  fast.threads = 4;
  const RebuildProgress unthrottled =
      RunRebuild(codec, cfg, SmallWl(), 0, fast);

  RebuildConfig slow = fast;
  slow.rate_limit_gbps = unthrottled.gbps / 4.0;
  const RebuildProgress throttled =
      RunRebuild(codec, cfg, SmallWl(), 0, slow);

  EXPECT_LE(throttled.gbps, slow.rate_limit_gbps * 1.05);
  EXPECT_GT(throttled.sim_seconds, 3.0 * unthrottled.sim_seconds);
  EXPECT_EQ(throttled.stripes_done, unthrottled.stripes_done);
}

TEST(Rebuild, MoreWorkersGoFaster) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig one;
  one.threads = 1;
  RebuildConfig four;
  four.threads = 4;
  const double t1 = RunRebuild(codec, cfg, SmallWl(), 1, one).sim_seconds;
  const double t4 = RunRebuild(codec, cfg, SmallWl(), 1, four).sim_seconds;
  EXPECT_LT(t4, 0.4 * t1);
}

TEST(Rebuild, ParityDeviceLossWorksToo) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig rc;
  rc.threads = 2;
  const RebuildProgress p =
      RunRebuild(codec, cfg, SmallWl(), /*failed_block=*/9, rc);
  EXPECT_EQ(p.stripes_done, p.stripes_total);
}

TEST(Rebuild, DialgaRebuildsFasterThanIsal) {
  const simmem::SimConfig cfg;
  RebuildConfig rc;
  rc.threads = 4;
  const ec::IsalCodec isal(8, 3);
  const dialga::DialgaCodec dlg(8, 3);
  const double isal_t =
      RunRebuild(isal, cfg, SmallWl(), 0, rc).sim_seconds;
  const double dlg_t = RunRebuild(dlg, cfg, SmallWl(), 0, rc).sim_seconds;
  EXPECT_LT(dlg_t, isal_t)
      << "even the static DIALGA snapshot plan should rebuild faster";
}

}  // namespace
}  // namespace repair
