#include "repair/rebuild.h"

#include <gtest/gtest.h>

#include <mutex>
#include <random>
#include <set>

#include "dialga/dialga.h"
#include "ec/isal.h"
#include "ec/parallel.h"

namespace repair {
namespace {

bench_util::WorkloadConfig SmallWl() {
  bench_util::WorkloadConfig wl;
  wl.k = 8;
  wl.m = 3;
  wl.block_size = 1024;
  wl.total_data_bytes = 4 << 20;  // 512 stripes
  return wl;
}

TEST(Rebuild, CompletesAndAccounts) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig rc;
  rc.threads = 2;
  rc.batch_stripes = 50;

  std::size_t callbacks = 0;
  std::size_t last_done = 0;
  const RebuildProgress p = RunRebuild(
      codec, cfg, SmallWl(), /*failed_block=*/2, rc,
      [&](const RebuildProgress& pr) {
        ++callbacks;
        EXPECT_GE(pr.stripes_done, last_done);
        last_done = pr.stripes_done;
      });

  EXPECT_EQ(p.stripes_total, 512u);
  EXPECT_EQ(p.stripes_done, 512u);
  EXPECT_EQ(p.bytes_rebuilt, 512u * 1024u);
  EXPECT_DOUBLE_EQ(p.fraction(), 1.0);
  EXPECT_GT(p.gbps, 0.0);
  EXPECT_GE(callbacks, 5u);  // 512 stripes / (2 threads x 50) batches
}

TEST(Rebuild, ThrottleCapsRate) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig fast;
  fast.threads = 4;
  const RebuildProgress unthrottled =
      RunRebuild(codec, cfg, SmallWl(), 0, fast);

  RebuildConfig slow = fast;
  slow.rate_limit_gbps = unthrottled.gbps / 4.0;
  const RebuildProgress throttled =
      RunRebuild(codec, cfg, SmallWl(), 0, slow);

  EXPECT_LE(throttled.gbps, slow.rate_limit_gbps * 1.05);
  EXPECT_GT(throttled.sim_seconds, 3.0 * unthrottled.sim_seconds);
  EXPECT_EQ(throttled.stripes_done, unthrottled.stripes_done);
}

TEST(Rebuild, MoreWorkersGoFaster) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig one;
  one.threads = 1;
  RebuildConfig four;
  four.threads = 4;
  const double t1 = RunRebuild(codec, cfg, SmallWl(), 1, one).sim_seconds;
  const double t4 = RunRebuild(codec, cfg, SmallWl(), 1, four).sim_seconds;
  EXPECT_LT(t4, 0.4 * t1);
}

TEST(Rebuild, ParityDeviceLossWorksToo) {
  const ec::IsalCodec codec(8, 3);
  const simmem::SimConfig cfg;
  RebuildConfig rc;
  rc.threads = 2;
  const RebuildProgress p =
      RunRebuild(codec, cfg, SmallWl(), /*failed_block=*/9, rc);
  EXPECT_EQ(p.stripes_done, p.stripes_total);
}

TEST(Rebuild, DialgaRebuildsFasterThanIsal) {
  const simmem::SimConfig cfg;
  RebuildConfig rc;
  rc.threads = 4;
  const ec::IsalCodec isal(8, 3);
  const dialga::DialgaCodec dlg(8, 3);
  const double isal_t =
      RunRebuild(isal, cfg, SmallWl(), 0, rc).sim_seconds;
  const double dlg_t = RunRebuild(dlg, cfg, SmallWl(), 0, rc).sim_seconds;
  EXPECT_LT(dlg_t, isal_t)
      << "even the static DIALGA snapshot plan should rebuild faster";
}

/// Real host buffers for the functional scrub tests: `stripes` RS(k, m)
/// stripes with valid parity, plus the pointer tables ParallelDecode
/// needs.
struct ScrubCorpus {
  std::size_t k, m, bs, stripes;
  std::vector<std::vector<std::byte>> storage;
  std::vector<std::vector<std::byte*>> all;
  std::vector<ec::DecodeJob> jobs;

  ScrubCorpus(const ec::Codec& codec, std::size_t bs_, std::size_t n,
              std::span<const std::size_t> erasures)
      : k(codec.params().k), m(codec.params().m), bs(bs_), stripes(n) {
    storage.resize(n * (k + m), std::vector<std::byte>(bs));
    std::vector<const std::byte*> data(k);
    std::vector<std::byte*> parity(m);
    std::mt19937_64 rng(4242);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t i = 0; i < k; ++i) {
        auto& blk = storage[s * (k + m) + i];
        for (auto& b : blk) b = static_cast<std::byte>(rng());
        data[i] = blk.data();
      }
      for (std::size_t j = 0; j < m; ++j) {
        parity[j] = storage[s * (k + m) + k + j].data();
      }
      codec.encode(bs, data, parity);
    }
    all.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t b = 0; b < k + m; ++b) {
        all[s].push_back(storage[s * (k + m) + b].data());
      }
      for (const std::size_t e : erasures) {
        std::fill(storage[s * (k + m) + e].begin(),
                  storage[s * (k + m) + e].end(), std::byte{0});
      }
      jobs.push_back({all[s], erasures});
    }
  }
};

TEST(Scrub, CleanPassRepairsEverything) {
  const ec::IsalCodec codec(6, 2);
  const std::vector<std::size_t> erasures{1, 6};
  ScrubCorpus corpus(codec, 512, 20, erasures);
  const ScrubReport r = ScrubStripes(codec, 512, corpus.jobs, 2);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.stripes, 20u);
  EXPECT_EQ(r.failed_first_pass, 0u);
  EXPECT_EQ(r.retry_rounds, 0u);
}

TEST(Scrub, UnrecoverableStripesKeepTheirIndices) {
  const ec::IsalCodec codec(4, 2);
  const std::vector<std::size_t> ok{0};
  const std::vector<std::size_t> fatal{0, 1, 2};  // > m erasures
  ScrubCorpus corpus(codec, 256, 8, ok);
  corpus.jobs[2].erasures = fatal;
  corpus.jobs[6].erasures = fatal;
  const ScrubReport r = ScrubStripes(codec, 256, corpus.jobs, 2);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.failed_first_pass, 2u);
  EXPECT_EQ(r.retry_rounds, 1u);  // retried once, still dead
  EXPECT_EQ(r.unrecovered, (std::vector<std::size_t>{2, 6}));
}

/// Fails each marked stripe's first decode attempt (identified by its
/// block-pointer table), then delegates — a transient media fault. Also
/// counts delegated decodes so the test can prove the retry pass only
/// re-touches the stripes that failed.
class FlakyCodec : public ec::Codec {
 public:
  FlakyCodec(const ec::Codec& inner, std::set<const void*> poisoned)
      : inner_(inner), poisoned_(std::move(poisoned)) {}

  std::string name() const override { return "flaky"; }
  ec::CodeParams params() const override { return inner_.params(); }
  ec::SimdWidth simd() const override { return inner_.simd(); }
  void encode(std::size_t block_size,
              std::span<const std::byte* const> data,
              std::span<std::byte* const> parity) const override {
    inner_.encode(block_size, data, parity);
  }
  bool decode(std::size_t block_size, std::span<std::byte* const> blocks,
              std::span<const std::size_t> erasures) const override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++decode_calls_;
      const auto it = poisoned_.find(blocks.data());
      if (it != poisoned_.end()) {
        poisoned_.erase(it);
        return false;
      }
    }
    return inner_.decode(block_size, blocks, erasures);
  }
  ec::EncodePlan encode_plan(std::size_t block_size,
                             const simmem::ComputeCost& cost) const override {
    return inner_.encode_plan(block_size, cost);
  }
  ec::EncodePlan decode_plan(std::size_t block_size,
                             const simmem::ComputeCost& cost,
                             std::span<const std::size_t> erasures)
      const override {
    return inner_.decode_plan(block_size, cost, erasures);
  }
  std::size_t decode_calls() const {
    std::lock_guard<std::mutex> lk(mu_);
    return decode_calls_;
  }

 private:
  const ec::Codec& inner_;
  mutable std::mutex mu_;
  mutable std::set<const void*> poisoned_;
  mutable std::size_t decode_calls_ = 0;
};

TEST(Scrub, RetriesOnlyTheFailedSubset) {
  const ec::IsalCodec inner(5, 2);
  const std::vector<std::size_t> erasures{0};
  ScrubCorpus corpus(inner, 512, 16, erasures);
  const FlakyCodec codec(
      inner, {corpus.jobs[3].blocks.data(), corpus.jobs[11].blocks.data()});

  const ScrubReport r = ScrubStripes(codec, 512, corpus.jobs, 2);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.failed_first_pass, 2u);
  EXPECT_EQ(r.retry_rounds, 1u);
  // 16 first-pass decodes + exactly the 2 flaky stripes retried.
  EXPECT_EQ(codec.decode_calls(), 18u);
}

TEST(Scrub, RetryBudgetZeroReportsFirstPassFailures) {
  const ec::IsalCodec inner(4, 2);
  const std::vector<std::size_t> erasures{1};
  ScrubCorpus corpus(inner, 256, 6, erasures);
  const FlakyCodec codec(inner, {corpus.jobs[0].blocks.data()});
  const ScrubReport r =
      ScrubStripes(codec, 256, corpus.jobs, 1, /*max_retries=*/0);
  EXPECT_EQ(r.failed_first_pass, 1u);
  EXPECT_EQ(r.retry_rounds, 0u);
  EXPECT_EQ(r.unrecovered, (std::vector<std::size_t>{0}));
}

TEST(Scrub, VerifierFailuresJoinTheRetrySubset) {
  // A decode can "succeed" and still produce wrong bytes when a
  // survivor was silently corrupt — the codec only sees declared
  // erasures. A caller-supplied verifier must put such stripes through
  // the retry loop and into `unrecovered`, not let them be reported
  // repaired.
  const ec::IsalCodec codec(4, 2);
  const std::vector<std::size_t> erasures{1};
  ScrubCorpus corpus(codec, 256, 8, erasures);
  // Rot a *survivor* block of stripe 3: decode still succeeds
  // algebraically, but the recovered bytes are wrong.
  corpus.storage[3 * 6 + 2][10] ^= std::byte{0x40};
  std::size_t verify_calls = 0;
  const ScrubReport r = ScrubStripes(
      codec, 256, corpus.jobs, 2, /*max_retries=*/1,
      [&](std::size_t job) {
        ++verify_calls;
        return job != 3;  // stands in for a checksum mismatch
      });
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.failed_first_pass, 1u);
  EXPECT_EQ(r.unrecovered, (std::vector<std::size_t>{3}));
  // Verified on the first pass (8 jobs) and again on the retry (1).
  EXPECT_EQ(verify_calls, 9u);
}

TEST(Scrub, VerifierPassingKeepsThePassClean) {
  const ec::IsalCodec codec(4, 2);
  const std::vector<std::size_t> erasures{0, 5};
  ScrubCorpus corpus(codec, 256, 5, erasures);
  const ScrubReport r =
      ScrubStripes(codec, 256, corpus.jobs, 2, /*max_retries=*/1,
                   [](std::size_t) { return true; });
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.failed_first_pass, 0u);
}

}  // namespace
}  // namespace repair
