#include "gf/gf65536.h"

#include <gtest/gtest.h>

#include <random>

#include "ec/rs16.h"

namespace gf16 {
namespace {

TEST(Gf65536, MulIdentityAndZero) {
  for (unsigned a = 0; a < kFieldSize; a += 997) {
    EXPECT_EQ(mul(static_cast<u16>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<u16>(a)), a);
    EXPECT_EQ(mul(static_cast<u16>(a), 0), 0);
  }
}

TEST(Gf65536, MulAgainstCarrylessReference) {
  // Bitwise carry-less multiply + reduction, independent of the tables.
  auto ref_mul = [](u16 a, u16 b) {
    std::uint32_t acc = 0;
    std::uint32_t aa = a;
    for (unsigned i = 0; i < 16; ++i) {
      if (b >> i & 1) acc ^= aa << i;
    }
    for (int bit = 31; bit >= 16; --bit) {
      if (acc >> bit & 1) acc ^= kPolynomial << (bit - 16);
    }
    return static_cast<u16>(acc);
  };
  std::mt19937 rng(1);
  for (int t = 0; t < 2000; ++t) {
    const u16 a = static_cast<u16>(rng());
    const u16 b = static_cast<u16>(rng());
    ASSERT_EQ(mul(a, b), ref_mul(a, b)) << a << " * " << b;
  }
}

TEST(Gf65536, InverseRoundTripsSampled) {
  for (unsigned a = 1; a < kFieldSize; a += 251) {
    EXPECT_EQ(mul(static_cast<u16>(a), inv(static_cast<u16>(a))), 1);
  }
}

TEST(Gf65536, PowMatchesRepeatedMul) {
  for (const u16 a : {u16{2}, u16{0x1234}, u16{0xFFFF}}) {
    u16 acc = 1;
    for (unsigned n = 0; n < 12; ++n) {
      EXPECT_EQ(pow(a, n), acc);
      acc = mul(acc, a);
    }
  }
}

TEST(Gf65536, GeneratorHasFullOrder) {
  // 2^(2^16-1) == 1, and the order does not divide the two maximal
  // proper divisors of 65535 = 3 * 5 * 17 * 257.
  EXPECT_EQ(pow(kGenerator, 65535), 1);
  for (const unsigned d : {65535u / 3, 65535u / 5, 65535u / 17, 65535u / 257}) {
    EXPECT_NE(pow(kGenerator, d), 1) << "order divides " << d;
  }
}

TEST(Gf65536, RegionKernelsMatchScalar) {
  std::mt19937_64 rng(7);
  const std::size_t n = 1024;
  std::vector<std::byte> src(n), dst(n), ref(n);
  for (auto& b : src) b = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < n; ++i) ref[i] = dst[i] = std::byte{0};

  const u16 c = 0x1B2D;
  mul_set(c, src.data(), dst.data(), n);
  for (std::size_t i = 0; i < n; i += 2) {
    const u16 x = static_cast<u16>(static_cast<unsigned>(src[i]) |
                                   (static_cast<unsigned>(src[i + 1]) << 8));
    const u16 y = mul(c, x);
    ref[i] = static_cast<std::byte>(y & 0xff);
    ref[i + 1] = static_cast<std::byte>(y >> 8);
  }
  EXPECT_EQ(dst, ref);

  // acc twice by c == set by (c ^ c) == zero.
  std::vector<std::byte> acc(n, std::byte{0});
  mul_acc(c, src.data(), acc.data(), n);
  mul_acc(c, src.data(), acc.data(), n);
  for (const std::byte b : acc) EXPECT_EQ(b, std::byte{0});
}

TEST(Gf65536, MatrixInvertRoundTrips) {
  std::mt19937_64 rng(5);
  Matrix a(8, 8);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      a.at(r, c) = static_cast<u16>(rng());
  const auto ai = invert(a);
  if (!ai) GTEST_SKIP() << "random matrix happened to be singular";
  // a * ai == I, via explicit multiply.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      u16 acc = 0;
      for (std::size_t i = 0; i < 8; ++i)
        acc ^= mul(a.at(r, i), ai->at(i, c));
      EXPECT_EQ(acc, r == c ? 1 : 0);
    }
  }
}

TEST(Gf65536, SingularMatrixRejected) {
  Matrix a(2, 2);
  a.at(0, 0) = 3;
  a.at(0, 1) = 5;
  a.at(1, 0) = 3;
  a.at(1, 1) = 5;
  EXPECT_FALSE(invert(a).has_value());
}

// ---------------------------------------------------------------------

struct Blocks {
  std::vector<std::vector<std::byte>> storage;
  std::vector<const std::byte*> data_ptrs;
  std::vector<std::byte*> parity_ptrs;
  std::vector<std::byte*> all_ptrs;
};

Blocks MakeBlocks(std::size_t k, std::size_t m, std::size_t bs,
                  std::uint64_t seed) {
  Blocks b;
  std::mt19937_64 rng(seed);
  b.storage.resize(k + m, std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& byte : b.storage[i]) byte = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < k; ++i) b.data_ptrs.push_back(b.storage[i].data());
  for (std::size_t j = 0; j < m; ++j)
    b.parity_ptrs.push_back(b.storage[k + j].data());
  for (auto& s : b.storage) b.all_ptrs.push_back(s.data());
  return b;
}

TEST(Rs16Codec, RoundTripsBeyondGf256Limit) {
  // 300 + 6 blocks: impossible in GF(2^8).
  const std::size_t k = 300, m = 6, bs = 128;
  const ec::Rs16Codec codec(k, m);
  Blocks b = MakeBlocks(k, m, bs, 11);
  codec.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{0, 150, 299, 301, 303, 305};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(codec.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Rs16Codec, RejectsTooManyErasures) {
  const ec::Rs16Codec codec(10, 2);
  Blocks b = MakeBlocks(10, 2, 128, 12);
  codec.encode(128, b.data_ptrs, b.parity_ptrs);
  EXPECT_FALSE(
      codec.decode(128, b.all_ptrs, std::vector<std::size_t>{0, 1, 2}));
}

TEST(Rs16Codec, PlanMatchesGf8StructureWithDoubleCompute) {
  const simmem::ComputeCost cost{};
  const ec::Rs16Codec wide(12, 4);
  const ec::IsalCodec narrow(12, 4);
  const ec::EncodePlan p16 = wide.encode_plan(1024, cost);
  const ec::EncodePlan p8 = narrow.encode_plan(1024, cost);
  EXPECT_EQ(p16.count(ec::PlanOp::Kind::kLoad),
            p8.count(ec::PlanOp::Kind::kLoad))
      << "the memory pattern must be identical";
  EXPECT_EQ(p16.count(ec::PlanOp::Kind::kStore),
            p8.count(ec::PlanOp::Kind::kStore));
  EXPECT_GT(p16.total_compute_cycles(), 1.5 * p8.total_compute_cycles());
}

TEST(Rs16Codec, DialgaOptionsApply) {
  const simmem::ComputeCost cost{};
  const ec::Rs16Codec codec(64, 4);
  ec::IsalPlanOptions opts;
  opts.prefetch_distance = 64;
  const ec::EncodePlan plan = codec.encode_plan_with(1024, cost, opts);
  EXPECT_GT(plan.count(ec::PlanOp::Kind::kPrefetch), 0u);
}

}  // namespace
}  // namespace gf16
