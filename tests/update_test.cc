#include "ec/update.h"

#include <gtest/gtest.h>

#include <random>

#include "ec/isal.h"

namespace ec {
namespace {

struct Blocks {
  std::vector<std::vector<std::byte>> storage;
  std::vector<const std::byte*> data_ptrs;
  std::vector<std::byte*> parity_ptrs;
};

Blocks MakeBlocks(std::size_t k, std::size_t m, std::size_t bs,
                  std::uint64_t seed) {
  Blocks b;
  std::mt19937_64 rng(seed);
  b.storage.resize(k + m, std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& byte : b.storage[i]) byte = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < k; ++i) b.data_ptrs.push_back(b.storage[i].data());
  for (std::size_t j = 0; j < m; ++j)
    b.parity_ptrs.push_back(b.storage[k + j].data());
  return b;
}

class UpdateTest : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(UpdateTest, DeltaUpdateMatchesFullReencode) {
  const auto [block, offset, len] = GetParam();
  const std::size_t k = 6, m = 3, bs = 2048;
  const IsalCodec codec(k, m);
  const UpdateEngine engine(codec);

  Blocks b = MakeBlocks(k, m, bs, 31);
  codec.encode(bs, b.data_ptrs, b.parity_ptrs);

  std::mt19937_64 rng(77);
  std::vector<std::byte> fresh(len);
  for (auto& byte : fresh) byte = static_cast<std::byte>(rng());

  // Path A: delta update in place.
  Blocks delta_path = b;
  std::vector<std::byte*> dp_parity;
  for (std::size_t j = 0; j < m; ++j)
    dp_parity.push_back(delta_path.storage[k + j].data());
  engine.apply(bs, block, offset, fresh, delta_path.storage[block].data(),
               dp_parity);

  // Path B: overwrite the data then re-encode everything.
  Blocks full_path = b;
  std::copy(fresh.begin(), fresh.end(),
            full_path.storage[block].begin() + offset);
  std::vector<const std::byte*> fp_data;
  std::vector<std::byte*> fp_parity;
  for (std::size_t i = 0; i < k; ++i)
    fp_data.push_back(full_path.storage[i].data());
  for (std::size_t j = 0; j < m; ++j)
    fp_parity.push_back(full_path.storage[k + j].data());
  codec.encode(bs, fp_data, fp_parity);

  EXPECT_EQ(delta_path.storage, full_path.storage);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UpdateTest,
    ::testing::Values(std::make_tuple(0, 0, 64),        // one line
                      std::make_tuple(2, 64, 128),      // aligned middle
                      std::make_tuple(5, 100, 200),     // unaligned
                      std::make_tuple(1, 0, 2048),      // whole block
                      std::make_tuple(3, 2047, 1),      // last byte
                      std::make_tuple(4, 777, 555)));   // odd everything

TEST(UpdateEngine, UpdatedStripeStillDecodes) {
  const std::size_t k = 6, m = 3, bs = 1024;
  const IsalCodec codec(k, m);
  const UpdateEngine engine(codec);
  Blocks b = MakeBlocks(k, m, bs, 8);
  codec.encode(bs, b.data_ptrs, b.parity_ptrs);

  std::vector<std::byte> fresh(300, std::byte{0x5A});
  engine.apply(bs, 2, 111, fresh, b.storage[2].data(), b.parity_ptrs);
  const auto golden = b.storage;

  // Lose the updated block plus two others; decode must restore the
  // NEW contents.
  std::vector<std::byte*> all;
  for (auto& s : b.storage) all.push_back(s.data());
  const std::vector<std::size_t> erasures{2, 4, 7};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(codec.decode(bs, all, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(UpdatePlan, RmwTouchedLinesOnly) {
  const IsalCodec codec(6, 3);
  const UpdateEngine engine(codec);
  const simmem::ComputeCost cost{};
  // 100 bytes at offset 100: byte range [100, 200) covers lines 1-3 of
  // the block, i.e. offsets [64, 256).
  const EncodePlan plan = engine.update_plan(1024, 100, 100, cost);
  EXPECT_EQ(plan.num_data, 1u);
  EXPECT_EQ(plan.num_parity, 3u);
  // (1 data + 3 parity) x 3 lines, loaded and stored once each.
  EXPECT_EQ(plan.count(PlanOp::Kind::kLoad), 12u);
  EXPECT_EQ(plan.count(PlanOp::Kind::kStore), 12u);
  EXPECT_EQ(plan.count(PlanOp::Kind::kFence), 1u);
  for (const PlanOp& op : plan.ops) {
    if (op.kind == PlanOp::Kind::kLoad || op.kind == PlanOp::Kind::kStore) {
      EXPECT_GE(op.offset, 64u);
      EXPECT_LT(op.offset, 256u);
      EXPECT_LT(op.block, 4u);
    }
  }
}

TEST(UpdatePlan, HonorsPrefetchOptions) {
  const IsalCodec codec(8, 4);
  const UpdateEngine engine(codec);
  const simmem::ComputeCost cost{};
  IsalPlanOptions opts;
  opts.prefetch_distance = 6;
  const EncodePlan plan = engine.update_plan(4096, 0, 4096, cost, opts);
  EXPECT_GT(plan.count(PlanOp::Kind::kPrefetch), 0u);
}

TEST(UpdateTraffic, CrossoverArithmetic) {
  // Small writes move far less traffic than a re-encode; whole-block
  // updates of wide stripes approach it.
  EXPECT_LT(UpdateEngine::update_traffic_bytes(64, 4),
            UpdateEngine::reencode_traffic_bytes(1024, 12, 4));
  // 1 line updated, m=4: 2*(5)*64 = 640 bytes.
  EXPECT_EQ(UpdateEngine::update_traffic_bytes(64, 4), 640u);
  EXPECT_EQ(UpdateEngine::reencode_traffic_bytes(1024, 12, 4), 16u * 1024u);
}

}  // namespace
}  // namespace ec
