#include "ec/isal_decompose.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "ec/isal.h"

namespace ec {
namespace {

struct Blocks {
  std::vector<std::vector<std::byte>> storage;
  std::vector<const std::byte*> data_ptrs;
  std::vector<std::byte*> parity_ptrs;
  std::vector<std::byte*> all_ptrs;
};

Blocks MakeBlocks(std::size_t k, std::size_t m, std::size_t bs,
                  std::uint64_t seed) {
  Blocks b;
  std::mt19937_64 rng(seed);
  b.storage.resize(k + m, std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& byte : b.storage[i]) byte = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < k; ++i) b.data_ptrs.push_back(b.storage[i].data());
  for (std::size_t j = 0; j < m; ++j)
    b.parity_ptrs.push_back(b.storage[k + j].data());
  for (auto& s : b.storage) b.all_ptrs.push_back(s.data());
  return b;
}

TEST(IsalDecompose, ParityIdenticalToPlainIsal) {
  const std::size_t k = 40, m = 4, bs = 512;
  const IsalCodec plain(k, m);
  const IsalDecomposeCodec split(k, m, 16);
  Blocks a = MakeBlocks(k, m, bs, 21);
  Blocks b = MakeBlocks(k, m, bs, 21);
  plain.encode(bs, a.data_ptrs, a.parity_ptrs);
  split.encode(bs, b.data_ptrs, b.parity_ptrs);
  EXPECT_EQ(a.storage, b.storage);
}

TEST(IsalDecompose, RoundTripsThroughErasures) {
  const std::size_t k = 40, m = 4, bs = 256;
  const IsalDecomposeCodec codec(k, m);
  Blocks b = MakeBlocks(k, m, bs, 22);
  codec.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{0, 17, 39, 42};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(codec.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(IsalDecompose, GroupCount) {
  EXPECT_EQ(IsalDecomposeCodec(48, 4, 16).num_groups(), 3u);
  EXPECT_EQ(IsalDecomposeCodec(40, 4, 16).num_groups(), 3u);
  EXPECT_EQ(IsalDecomposeCodec(8, 4, 16).num_groups(), 1u);
}

TEST(IsalDecompose, PlanHasPartialTrafficAndScratch) {
  const simmem::ComputeCost cost{};
  const IsalDecomposeCodec codec(48, 4, 16);
  const EncodePlan plan = codec.encode_plan(1024, cost);
  EXPECT_EQ(plan.num_scratch, 3u * 4u);

  // Loads cover the data blocks once each plus the partial reloads.
  const std::size_t data_lines = 48 * 1024 / 64;
  const std::size_t partial_lines = 3 * 4 * 1024 / 64;
  EXPECT_EQ(plan.count(PlanOp::Kind::kLoad), data_lines + partial_lines);
  // Cached stores for partials, NT stores for the final parity only.
  EXPECT_EQ(plan.count(PlanOp::Kind::kStoreCached), partial_lines);
  EXPECT_EQ(plan.count(PlanOp::Kind::kStore), 4u * 1024u / 64u);
}

TEST(IsalDecompose, GroupLoadsAreContiguousStreams) {
  // Within a group pass, only that group's blocks are touched — the
  // property that re-activates the hardware prefetcher.
  const simmem::ComputeCost cost{};
  const IsalDecomposeCodec codec(32, 2, 16);
  const EncodePlan plan = codec.encode_plan(512, cost);
  std::set<std::uint16_t> first_half_blocks;
  std::size_t seen_loads = 0;
  const std::size_t group_loads = 16 * 512 / 64;
  for (const PlanOp& op : plan.ops) {
    if (op.kind != PlanOp::Kind::kLoad) continue;
    if (seen_loads < group_loads) first_half_blocks.insert(op.block);
    ++seen_loads;
  }
  for (const std::uint16_t blk : first_half_blocks) {
    EXPECT_LT(blk, 16u) << "first pass must only read group 0";
  }
}

TEST(IsalDecompose, DecodePlanMatchesPlainIsal) {
  const simmem::ComputeCost cost{};
  const IsalDecomposeCodec split(48, 4, 16);
  const IsalCodec plain(48, 4);
  const std::vector<std::size_t> erasures{3};
  const EncodePlan a = split.decode_plan(1024, cost, erasures);
  const EncodePlan b = plain.decode_plan(1024, cost, erasures);
  EXPECT_EQ(a.count(PlanOp::Kind::kLoad), b.count(PlanOp::Kind::kLoad));
  EXPECT_EQ(a.count(PlanOp::Kind::kStore), b.count(PlanOp::Kind::kStore));
}

TEST(IsalDecompose, Name) {
  EXPECT_EQ(IsalDecomposeCodec(48, 4).name(), "ISA-L-D");
}

}  // namespace
}  // namespace ec
