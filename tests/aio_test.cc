// aio subsystem tests: mode parsing/selection, the raw io_uring ring
// (skipped cleanly where the kernel lacks it), and the datapath
// contract both backends share — fstat-sized reads, explicit
// short-read errors, scatter/gather with segment callbacks, durable
// temp→fsync→rename writes, and the aio.submit / aio.cqe fault sites.
#include "aio/datapath.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "aio/ring.h"
#include "fault/injector.h"
#include "pmpool/arena.h"

namespace {

namespace fs = std::filesystem;

class AioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::Global().clear();
    dir_ = fs::temp_directory_path() /
           ("dialga_aio_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::Injector::Global().clear();
    fs::remove_all(dir_);
  }

  fs::path file_with(const std::string& name, std::size_t bytes,
                     std::uint64_t seed) {
    const fs::path p = dir_ / name;
    std::mt19937_64 rng(seed);
    std::ofstream out(p, std::ios::binary);
    for (std::size_t i = 0; i < bytes; ++i) {
      const char c = static_cast<char>(rng());
      out.write(&c, 1);
    }
    return p;
  }

  std::vector<std::byte> slurp(const fs::path& p) {
    std::vector<std::byte> out;
    EXPECT_TRUE(aio::ReadFileFull(p, &out).ok()) << p;
    return out;
  }

  /// The durable-write protocol must never leak its temp files.
  std::size_t tmp_leftovers() const {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().filename().string().find(".tmp-") != std::string::npos) {
        ++n;
      }
    }
    return n;
  }

  /// Backends to exercise: stdio always, uring when the kernel has it.
  std::vector<aio::Backend> backends() const {
    std::vector<aio::Backend> b{aio::Backend::kStdio};
    if (aio::Ring::KernelSupported()) b.push_back(aio::Backend::kUring);
    return b;
  }

  fs::path dir_;
};

TEST_F(AioTest, ParseModeAcceptsTheDocumentedSpellings) {
  EXPECT_EQ(aio::ParseMode("auto"), aio::Mode::kAuto);
  EXPECT_EQ(aio::ParseMode("stdio"), aio::Mode::kStdio);
  EXPECT_EQ(aio::ParseMode("uring"), aio::Mode::kUring);
  EXPECT_EQ(aio::ParseMode("io_uring"), aio::Mode::kUring);
  EXPECT_FALSE(aio::ParseMode("").has_value());
  EXPECT_FALSE(aio::ParseMode("aio").has_value());
  EXPECT_FALSE(aio::ParseMode("URING").has_value());
}

TEST_F(AioTest, ModeFromEnvFallsBackToAuto) {
  ::setenv("DIALGA_AIO", "stdio", 1);
  EXPECT_EQ(aio::ModeFromEnv(), aio::Mode::kStdio);
  ::setenv("DIALGA_AIO", "bogus-backend", 1);
  EXPECT_EQ(aio::ModeFromEnv(), aio::Mode::kAuto);
  ::unsetenv("DIALGA_AIO");
  EXPECT_EQ(aio::ModeFromEnv(), aio::Mode::kAuto);
}

TEST_F(AioTest, SelectBackendNeverFails) {
  // Forced stdio is always honoured; auto and forced uring must both
  // resolve to a working backend whatever the kernel supports.
  EXPECT_EQ(aio::SelectBackend(aio::Mode::kStdio), aio::Backend::kStdio);
  const aio::Backend resolved = aio::SelectBackend(aio::Mode::kAuto);
  EXPECT_EQ(aio::SelectBackend(aio::Mode::kUring), resolved);
  EXPECT_EQ(resolved, aio::Ring::KernelSupported() ? aio::Backend::kUring
                                                   : aio::Backend::kStdio);
}

TEST_F(AioTest, RingRoundtripWithRegisteredBuffers) {
  if (!aio::Ring::KernelSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  int err = 0;
  auto ring = aio::Ring::Create(8, &err);
  ASSERT_NE(ring, nullptr) << "io_uring_setup: " << std::strerror(err);

  pmpool::Arena arena;
  auto out_buf = arena.allocate(8192);
  auto in_buf = arena.allocate(8192);
  std::mt19937_64 rng(7);
  for (auto& b : out_buf) b = static_cast<std::byte>(rng());
  const bool fixed = ring->register_buffers(arena.iovecs().data(),
                                            static_cast<unsigned>(
                                                arena.iovecs().size()));

  const fs::path p = dir_ / "ring.bin";
  const int fd = ::open(p.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(ring->queue_write(fd, out_buf.data(), 8192, 0, 1,
                                fixed ? 0 : -1));
  ASSERT_EQ(ring->submit(), 1);
  std::vector<aio::Completion> cqes;
  ASSERT_EQ(ring->wait(1, &cqes), 1);
  EXPECT_EQ(cqes[0].user_data, 1u);
  EXPECT_EQ(cqes[0].res, 8192);

  ASSERT_TRUE(ring->queue_read(fd, in_buf.data(), 8192, 0, 2,
                               fixed ? 1 : -1));
  ASSERT_EQ(ring->submit(), 1);
  cqes.clear();
  ASSERT_EQ(ring->wait(1, &cqes), 1);
  EXPECT_EQ(cqes[0].res, 8192);
  ::close(fd);
  EXPECT_EQ(std::memcmp(out_buf.data(), in_buf.data(), 8192), 0);
}

TEST_F(AioTest, ReadFileFullSizesWithFstatAndReportsRealErrno) {
  const fs::path p = file_with("f.bin", 12345, 1);
  std::vector<std::byte> out;
  ASSERT_TRUE(aio::ReadFileFull(p, &out).ok());
  EXPECT_EQ(out.size(), 12345u);

  // Missing file: the errno is the open(2) failure, not a stale value.
  errno = 0;
  const auto st = aio::ReadFileFull(dir_ / "nope.bin", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.err, ENOENT);
}

TEST_F(AioTest, ReadFileExactFlagsSizeMismatchExplicitly) {
  const fs::path p = file_with("short.bin", 100, 2);
  std::vector<std::byte> buf(256);
  for (const aio::Backend b : backends()) {
    SCOPED_TRACE(aio::BackendName(b));
    aio::Transfer xfer(b);
    const auto st = aio::ReadFileExact(xfer, p, buf);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.detail.find("size mismatch"), std::string::npos)
        << st.detail;
  }
}

TEST_F(AioTest, ScatterReadFiresSegmentCallbacksOnceEach) {
  const std::size_t n = 64 * 1024;
  const fs::path p = file_with("scatter.bin", n, 3);
  const auto expect = slurp(p);
  for (const aio::Backend b : backends()) {
    SCOPED_TRACE(aio::BackendName(b));
    pmpool::Arena arena;
    auto buf = arena.allocate(n);
    // Interleaved segments: file quarters land out of order.
    std::vector<aio::Seg> segs{
        {buf.data() + 3 * n / 4, n / 4, 0},
        {buf.data() + n / 2, n / 4, n / 4},
        {buf.data() + n / 4, n / 4, n / 2},
        {buf.data(), n / 4, 3 * n / 4},
    };
    aio::Transfer xfer(b, arena.iovecs());
    std::vector<int> fired(segs.size(), 0);
    ASSERT_TRUE(aio::ReadScatter(xfer, p, segs, {},
                                 [&](std::size_t i) { ++fired[i]; })
                    .ok());
    EXPECT_EQ(fired, (std::vector<int>{1, 1, 1, 1}));
    for (std::size_t q = 0; q < 4; ++q) {
      EXPECT_EQ(std::memcmp(segs[q].buf, expect.data() + segs[q].offset,
                            n / 4),
                0)
          << "quarter " << q;
    }
  }
}

TEST_F(AioTest, ScatterReadPastEofIsAnExplicitShortRead) {
  const fs::path p = file_with("eof.bin", 1000, 4);
  for (const aio::Backend b : backends()) {
    SCOPED_TRACE(aio::BackendName(b));
    std::vector<std::byte> buf(2000);
    const std::vector<aio::Seg> segs{{buf.data(), buf.size(), 0}};
    aio::Transfer xfer(b);
    const auto st = aio::ReadScatter(xfer, p, segs);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.detail.find("short read"), std::string::npos) << st.detail;
  }
}

TEST_F(AioTest, DurableWriteReplacesAtomicallyAndLeavesNoTemp) {
  const fs::path p = dir_ / "target.bin";
  for (const aio::Backend b : backends()) {
    SCOPED_TRACE(aio::BackendName(b));
    std::vector<std::byte> v1(3000, std::byte{0x11});
    std::vector<std::byte> v2(5000, std::byte{0x22});
    aio::Transfer xfer(b);
    ASSERT_TRUE(aio::WriteFileDurable(xfer, p, v1).ok());
    EXPECT_EQ(slurp(p), v1);
    aio::Transfer xfer2(b);
    ASSERT_TRUE(aio::WriteFileDurable(xfer2, p, v2).ok());
    EXPECT_EQ(slurp(p), v2);
    EXPECT_EQ(tmp_leftovers(), 0u);
  }
}

TEST_F(AioTest, FailedDurableWriteLeavesOldContentAndNoTemp) {
  const fs::path p = dir_ / "victim.bin";
  const std::vector<std::byte> old(2048, std::byte{0x33});
  const std::vector<std::byte> next(4096, std::byte{0x44});
  aio::FaultSites sites;
  sites.write = "t.write";
  for (const aio::Backend b : backends()) {
    SCOPED_TRACE(aio::BackendName(b));
    {
      aio::Transfer xfer(b);
      ASSERT_TRUE(aio::WriteFileDurable(xfer, p, old, sites).ok());
    }
    fault::SitePlan plan;
    plan.probability = 1.0;
    plan.error = EIO;
    const fault::ScopedPlan scoped("t.write", plan);
    aio::Transfer xfer(b);
    const auto st = aio::WriteFileDurable(xfer, p, next, sites);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.err, EIO);
    EXPECT_EQ(slurp(p), old) << "failed write must not touch the target";
    EXPECT_EQ(tmp_leftovers(), 0u);
  }
}

TEST_F(AioTest, GatherWriteAssemblesSegmentsWithZeroGaps) {
  for (const aio::Backend b : backends()) {
    SCOPED_TRACE(aio::BackendName(b));
    const fs::path p = dir_ / (std::string("gather_") + aio::BackendName(b));
    std::vector<std::byte> a(100, std::byte{0xaa});
    std::vector<std::byte> c(100, std::byte{0xcc});
    // [0,100) = a, [100,200) = hole (zeros), [200,300) = c.
    const std::vector<aio::Seg> segs{{a.data(), a.size(), 0},
                                     {c.data(), c.size(), 200}};
    aio::Transfer xfer(b);
    ASSERT_TRUE(aio::WriteGatherDurable(xfer, p, segs).ok());
    const auto got = slurp(p);
    ASSERT_EQ(got.size(), 300u);
    EXPECT_EQ(std::memcmp(got.data(), a.data(), 100), 0);
    EXPECT_EQ(std::count(got.begin() + 100, got.begin() + 200,
                         std::byte{0}),
              100);
    EXPECT_EQ(std::memcmp(got.data() + 200, c.data(), 100), 0);
  }
}

TEST_F(AioTest, InjectedSubmitErrnoSurfacesFromTheRing) {
  if (!aio::Ring::KernelSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  const fs::path p = file_with("submit.bin", 8192, 5);
  fault::SitePlan plan;
  plan.probability = 1.0;
  plan.error = EIO;
  const fault::ScopedPlan scoped("aio.submit", plan);
  std::vector<std::byte> buf(8192);
  const std::vector<aio::Seg> segs{{buf.data(), buf.size(), 0}};
  aio::Transfer xfer(aio::Backend::kUring);
  const auto st = aio::ReadScatter(xfer, p, segs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.err, EIO);
}

TEST_F(AioTest, RingStaysUsableAfterAnInjectedSubmitFailure) {
  // A failed submit leaves its SQEs queued-but-unsubmitted; the error
  // path must rewind them, or the next operation on the same Transfer
  // submits them too and reaps completions with stale user_data —
  // which double-completes a sub-op and wraps its outstanding counter
  // into an infinite spin.
  if (!aio::Ring::KernelSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  const fs::path p = file_with("reuse.bin", 8192, 7);
  aio::Transfer xfer(aio::Backend::kUring);
  std::vector<std::byte> buf(8192);
  const std::vector<aio::Seg> segs{{buf.data(), buf.size(), 0}};
  {
    fault::SitePlan plan;
    plan.nth = {1};
    plan.error = EIO;
    const fault::ScopedPlan scoped("aio.submit", plan);
    const auto st = aio::ReadScatter(xfer, p, segs);
    ASSERT_FALSE(st.ok());
    ASSERT_EQ(st.err, EIO);
  }
  std::fill(buf.begin(), buf.end(), std::byte{0});
  ASSERT_TRUE(aio::ReadScatter(xfer, p, segs).ok());
  EXPECT_EQ(buf, slurp(p));
}

TEST_F(AioTest, InjectedCqeErrnoSurfacesFromTheRing) {
  if (!aio::Ring::KernelSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  const fs::path p = file_with("cqe.bin", 8192, 6);
  fault::SitePlan plan;
  plan.probability = 1.0;
  plan.error = EIO;
  const fault::ScopedPlan scoped("aio.cqe", plan);
  std::vector<std::byte> buf(8192);
  const std::vector<aio::Seg> segs{{buf.data(), buf.size(), 0}};
  aio::Transfer xfer(aio::Backend::kUring);
  const auto st = aio::ReadScatter(xfer, p, segs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.err, EIO);
}

TEST_F(AioTest, BackendsProduceBitIdenticalFiles) {
  if (!aio::Ring::KernelSupported()) {
    GTEST_SKIP() << "io_uring unavailable: nothing to compare";
  }
  std::mt19937_64 rng(9);
  std::vector<std::byte> data(3 * 1024 * 1024 + 137);  // > chunk size
  for (auto& b : data) b = static_cast<std::byte>(rng());
  aio::Transfer stdio_xfer(aio::Backend::kStdio);
  aio::Transfer uring_xfer(aio::Backend::kUring);
  ASSERT_TRUE(
      aio::WriteFileDurable(stdio_xfer, dir_ / "a.bin", data).ok());
  ASSERT_TRUE(
      aio::WriteFileDurable(uring_xfer, dir_ / "b.bin", data).ok());
  EXPECT_EQ(slurp(dir_ / "a.bin"), slurp(dir_ / "b.bin"));
  EXPECT_EQ(slurp(dir_ / "a.bin"), data);
}

}  // namespace
