#include "ec/xor_codec.h"

#include <gtest/gtest.h>

#include <random>

#include "ec/codec_util.h"
#include "ec/isal.h"

namespace ec {
namespace {

struct Blocks {
  std::vector<std::vector<std::byte>> storage;
  std::vector<const std::byte*> data_ptrs;
  std::vector<std::byte*> parity_ptrs;
  std::vector<std::byte*> all_ptrs;
};

Blocks MakeBlocks(std::size_t k, std::size_t m, std::size_t bs,
                  std::uint64_t seed) {
  Blocks b;
  std::mt19937_64 rng(seed);
  b.storage.resize(k + m, std::vector<std::byte>(bs));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& byte : b.storage[i]) byte = static_cast<std::byte>(rng());
  for (std::size_t i = 0; i < k; ++i) b.data_ptrs.push_back(b.storage[i].data());
  for (std::size_t j = 0; j < m; ++j)
    b.parity_ptrs.push_back(b.storage[k + j].data());
  for (auto& s : b.storage) b.all_ptrs.push_back(s.data());
  return b;
}

class XorCodecTest : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(XorCodecTest, ParityDiffersFromByteOrientedEncode) {
  // Bitmatrix codes run on bit-sliced symbols: their parity bytes are
  // legitimately different from a byte-oriented matrix encode with the
  // same generator (as with real jerasure/Zerasure vs ISA-L).
  const auto [k, m, bs] = GetParam();
  const XorCodec codec(k, m, gf::cauchy_generator(k, m), "test");
  Blocks bits = MakeBlocks(k, m, bs, 55);
  Blocks bytes = MakeBlocks(k, m, bs, 55);
  codec.encode(bs, bits.data_ptrs, bits.parity_ptrs);
  SystematicEncode(gf::cauchy_generator(k, m), k, m, bs, bytes.data_ptrs,
                   bytes.parity_ptrs);
  EXPECT_NE(bits.storage, bytes.storage);
}

TEST_P(XorCodecTest, EveryParityBlockDependsOnEveryDataBlock) {
  // Flip one byte in each data block: every parity block must change.
  const auto [k, m, bs] = GetParam();
  const XorCodec codec(k, m, gf::cauchy_generator(k, m), "test");
  Blocks base = MakeBlocks(k, m, bs, 56);
  codec.encode(bs, base.data_ptrs, base.parity_ptrs);
  for (std::size_t i = 0; i < k; ++i) {
    Blocks mod = MakeBlocks(k, m, bs, 56);
    mod.storage[i][0] ^= std::byte{1};
    codec.encode(bs, mod.data_ptrs, mod.parity_ptrs);
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_NE(mod.storage[k + j], base.storage[k + j])
          << "data " << i << " parity " << j;
    }
  }
}

TEST_P(XorCodecTest, DecompositionDoesNotChangeParity) {
  const auto [k, m, bs] = GetParam();
  if (k < 4) GTEST_SKIP();
  const XorCodec plain(k, m, gf::cauchy_generator(k, m), "plain");
  const XorCodec split(k, m, gf::cauchy_generator(k, m), "split",
                       /*decompose_group=*/3);
  Blocks a = MakeBlocks(k, m, bs, 77);
  Blocks b = MakeBlocks(k, m, bs, 77);
  plain.encode_via_schedule(bs, a.data_ptrs, a.parity_ptrs);
  split.encode_via_schedule(bs, b.data_ptrs, b.parity_ptrs);
  EXPECT_EQ(a.storage, b.storage);
}

TEST_P(XorCodecTest, RoundTripsThroughErasures) {
  const auto [k, m, bs] = GetParam();
  const XorCodec codec(k, m, gf::cauchy_generator(k, m), "test");
  Blocks b = MakeBlocks(k, m, bs, 99);
  codec.encode(bs, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  std::vector<std::size_t> erasures;
  for (std::size_t e = 0; e < m; ++e) erasures.push_back(e);  // worst case
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(codec.decode(bs, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XorCodecTest,
    ::testing::Values(std::make_tuple(4, 2, 256),
                      std::make_tuple(6, 3, 512),
                      std::make_tuple(8, 4, 1024),
                      std::make_tuple(12, 4, 2048),
                      std::make_tuple(10, 2, 5120)));

TEST(Zerasure, ProducesValidMdsCode) {
  const auto z = MakeZerasure(8, 4);
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->name(), "Zerasure");
  EXPECT_EQ(z->simd(), SimdWidth::kAvx256);
  Blocks b = MakeBlocks(8, 4, 512, 5);
  z->encode(512, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{0, 3, 9, 11};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(z->decode(512, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Zerasure, SearchBeatsPlainCauchy) {
  // The whole point of the matrix search: fewer scheduled XORs than the
  // unoptimized Cauchy construction.
  const XorCodec plain(8, 4, gf::cauchy_generator(8, 4), "plain");
  const auto z = MakeZerasure(8, 4);
  ASSERT_NE(z, nullptr);
  EXPECT_LT(z->schedule_xor_count(), plain.schedule_xor_count());
}

TEST(Zerasure, WideStripeSearchDoesNotConverge) {
  // Fig. 10: Zerasure has no results for k > 32.
  EXPECT_EQ(MakeZerasure(33, 4), nullptr);
  EXPECT_EQ(MakeZerasure(48, 4), nullptr);
  EXPECT_NE(MakeZerasure(32, 4), nullptr);
}

TEST(Zerasure, DeterministicForFixedSeed) {
  const auto a = MakeZerasure(6, 3, 8, 123);
  const auto b = MakeZerasure(6, 3, 8, 123);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->generator(), b->generator());
}

TEST(Cerasure, ProducesValidMdsCode) {
  const auto c = MakeCerasure(10, 4);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "Cerasure");
  Blocks b = MakeBlocks(10, 4, 1024, 6);
  c->encode(1024, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{2, 5, 7, 12};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(c->decode(1024, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(Cerasure, GreedySearchBeatsPlainCauchy) {
  const XorCodec plain(10, 4, gf::cauchy_generator(10, 4), "plain");
  const auto c = MakeCerasure(10, 4);
  EXPECT_LT(c->schedule_xor_count(), plain.schedule_xor_count());
}

TEST(Cerasure, DecomposesWideStripesOnly) {
  EXPECT_EQ(MakeCerasure(12, 4)->decompose_group(), 12u);  // == k: off
  EXPECT_EQ(MakeCerasure(48, 4)->decompose_group(), 16u);
}

TEST(Cerasure, WideStripeStillRoundTrips) {
  const auto c = MakeCerasure(40, 4);
  Blocks b = MakeBlocks(40, 4, 256, 8);
  c->encode(256, b.data_ptrs, b.parity_ptrs);
  const auto golden = b.storage;
  const std::vector<std::size_t> erasures{0, 20, 41};
  for (const std::size_t e : erasures)
    std::fill(b.storage[e].begin(), b.storage[e].end(), std::byte{0});
  ASSERT_TRUE(c->decode(256, b.all_ptrs, erasures));
  EXPECT_EQ(b.storage, golden);
}

TEST(XorPlan, ScratchSlotsCoverTempsAndPartials) {
  const simmem::ComputeCost cost{};
  const XorCodec plain(8, 2, gf::cauchy_generator(8, 2), "plain");
  const EncodePlan p1 = plain.encode_plan(512, cost);
  EXPECT_EQ(p1.num_data, 8u);
  EXPECT_EQ(p1.num_parity, 2u);

  const XorCodec split(8, 2, gf::cauchy_generator(8, 2), "split", 4);
  const EncodePlan p2 = split.encode_plan(512, cost);
  EXPECT_GE(p2.num_scratch, 2u * 2u) << "partials for 2 groups x 2 parities";

  // Every op's slot must be within the declared slot space.
  for (const EncodePlan* p : {&p1, &p2}) {
    for (const PlanOp& op : p->ops) {
      if (op.kind == PlanOp::Kind::kCompute) continue;
      EXPECT_LT(op.block, p->num_slots());
    }
  }
}

TEST(XorPlan, ParityStoresAreNonTemporalScratchStoresCached) {
  const simmem::ComputeCost cost{};
  const XorCodec split(8, 2, gf::cauchy_generator(8, 2), "split", 4);
  const EncodePlan p = split.encode_plan(512, cost);
  for (const PlanOp& op : p.ops) {
    if (op.kind == PlanOp::Kind::kStore) {
      EXPECT_GE(op.block, 8u);
      EXPECT_LT(op.block, 10u) << "NT stores only target final parity";
    }
    if (op.kind == PlanOp::Kind::kStoreCached) {
      EXPECT_GE(op.block, 10u) << "cached stores only target scratch";
    }
  }
}

TEST(XorPlan, MoreXorsMeansMoreLoads) {
  // The memory-access penalty of XOR codes vs the table approach.
  const simmem::ComputeCost cost{};
  const XorCodec xorc(8, 4, gf::cauchy_generator(8, 4), "x");
  const IsalCodec tbl(8, 4);
  const EncodePlan px = xorc.encode_plan(1024, cost);
  const EncodePlan pt = tbl.encode_plan(1024, cost);
  EXPECT_GT(px.count(PlanOp::Kind::kLoad), pt.count(PlanOp::Kind::kLoad));
}

TEST(XorPacketBytes, GranularityRules) {
  EXPECT_EQ(XorPacketBytes(256), 32u);   // sub-row 32 B < one line
  EXPECT_EQ(XorPacketBytes(512), 64u);   // sub-row exactly one line
  EXPECT_EQ(XorPacketBytes(1024), 64u);  // line-sized packets
  EXPECT_EQ(XorPacketBytes(5120), 64u);
}

TEST(XorDecodePlan, ParityErasureReencodes) {
  const simmem::ComputeCost cost{};
  const XorCodec codec(6, 3, gf::cauchy_generator(6, 3), "x");
  // One parity block erased: the plan must read data and store the
  // erased parity block (re-encode), not be empty.
  const std::vector<std::size_t> erasures{7};
  const EncodePlan p = codec.decode_plan(512, cost, erasures);
  EXPECT_GT(p.count(PlanOp::Kind::kLoad), 0u);
  std::set<std::uint16_t> stores;
  for (const PlanOp& op : p.ops)
    if (op.kind == PlanOp::Kind::kStore) stores.insert(op.block);
  EXPECT_EQ(stores, std::set<std::uint16_t>({7}));
}

TEST(XorDecodePlan, MixedDataAndParityErasures) {
  const simmem::ComputeCost cost{};
  const XorCodec codec(6, 3, gf::cauchy_generator(6, 3), "x");
  const std::vector<std::size_t> erasures{1, 8};
  const EncodePlan p = codec.decode_plan(512, cost, erasures);
  std::set<std::uint16_t> stores;
  for (const PlanOp& op : p.ops) {
    if (op.kind == PlanOp::Kind::kLoad) {
      EXPECT_NE(op.block, 1u);
      EXPECT_NE(op.block, 8u);
    }
    if (op.kind == PlanOp::Kind::kStore) stores.insert(op.block);
  }
  EXPECT_EQ(stores, (std::set<std::uint16_t>({1, 8})));
}

TEST(XorDecodePlan, UsesNaiveScheduleOverSurvivors) {
  const simmem::ComputeCost cost{};
  const XorCodec codec(6, 3, gf::cauchy_generator(6, 3), "x");
  const std::vector<std::size_t> erasures{1, 3};
  const EncodePlan p = codec.decode_plan(512, cost, erasures);
  std::set<std::uint16_t> loads, stores;
  for (const PlanOp& op : p.ops) {
    if (op.kind == PlanOp::Kind::kLoad) loads.insert(op.block);
    if (op.kind == PlanOp::Kind::kStore) stores.insert(op.block);
  }
  EXPECT_EQ(loads.count(1), 0u);
  EXPECT_EQ(loads.count(3), 0u);
  EXPECT_EQ(stores, std::set<std::uint16_t>({1, 3}));
  // Decode-matrix schedules cannot be optimized (section 5.4): expect
  // materially more XOR work than the encode of the same shape.
  const EncodePlan enc = codec.encode_plan(512, cost);
  EXPECT_GT(p.total_compute_cycles(), 0.5 * enc.total_compute_cycles());
}

}  // namespace
}  // namespace ec
