// Shared scaffolding for the per-figure benchmark binaries.
//
// Each figure binary registers one google-benchmark entry per plotted
// point. The simulated duration is reported through SetIterationTime
// (UseManualTime), so the benchmark's time column and bytes/second ARE
// simulated quantities, not host time; figure-specific metrics ride
// along as counters. Every binary prints the paper-shape series and is
// what EXPERIMENTS.md records.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "bench_util/workload.h"
#include "dialga/dialga.h"
#include "obs/metrics.h"
#include "ec/isal.h"
#include "ec/isal_decompose.h"
#include "ec/lrc.h"
#include "ec/xor_codec.h"

namespace fig {

inline constexpr std::size_t kMiB = 1ull << 20;

/// The five systems of the evaluation section.
enum class System { kIsal, kIsalD, kZerasure, kCerasure, kDialga };

inline const char* Name(System s) {
  switch (s) {
    case System::kIsal:
      return "ISA-L";
    case System::kIsalD:
      return "ISA-L-D";
    case System::kZerasure:
      return "Zerasure";
    case System::kCerasure:
      return "Cerasure";
    case System::kDialga:
      return "DIALGA";
  }
  return "?";
}

/// Build a baseline codec; nullptr when the system has no result for
/// these parameters (Zerasure beyond k = 32). DIALGA is handled by
/// RunSystem directly (it needs the adaptive provider).
inline std::unique_ptr<ec::Codec> MakeBaseline(
    System s, std::size_t k, std::size_t m,
    ec::SimdWidth simd = ec::SimdWidth::kAvx512) {
  switch (s) {
    case System::kIsal:
      return std::make_unique<ec::IsalCodec>(k, m, simd);
    case System::kIsalD:
      return std::make_unique<ec::IsalDecomposeCodec>(k, m, 16, simd);
    case System::kZerasure:
      return ec::MakeZerasure(k, m);  // AVX256 by construction
    case System::kCerasure:
      return ec::MakeCerasure(k, m);
    case System::kDialga:
      return nullptr;
  }
  return nullptr;
}

/// Timed encode of any system (adaptive provider for DIALGA).
inline bench_util::RunResult RunEncodeSystem(
    System s, const simmem::SimConfig& cfg, bench_util::WorkloadConfig wl,
    ec::SimdWidth simd = ec::SimdWidth::kAvx512, bool hw_prefetch = true) {
  if (s == System::kDialga) {
    const dialga::DialgaCodec codec(wl.k, wl.m, simd);
    auto provider = codec.make_encode_provider(
        {wl.k, wl.m, wl.block_size, wl.threads}, cfg);
    return bench_util::RunTimed(cfg, wl, *provider, hw_prefetch);
  }
  const auto codec = MakeBaseline(s, wl.k, wl.m, simd);
  if (!codec) return {};  // no result (search did not converge)
  return bench_util::RunEncode(cfg, wl, *codec, hw_prefetch);
}

/// Timed decode of any system.
inline bench_util::RunResult RunDecodeSystem(
    System s, const simmem::SimConfig& cfg, bench_util::WorkloadConfig wl,
    std::span<const std::size_t> erasures,
    ec::SimdWidth simd = ec::SimdWidth::kAvx512) {
  if (s == System::kDialga) {
    const dialga::DialgaCodec codec(wl.k, wl.m, simd);
    auto provider = codec.make_decode_provider(
        {wl.k, wl.m, wl.block_size, wl.threads}, cfg,
        {erasures.begin(), erasures.end()});
    return bench_util::RunTimed(cfg, wl, *provider);
  }
  const auto codec = MakeBaseline(s, wl.k, wl.m, simd);
  if (!codec) return {};
  return bench_util::RunDecode(cfg, wl, *codec, erasures);
}

/// Register one plotted point as a google-benchmark entry whose time is
/// the SIMULATED duration and whose counters carry figure metrics.
inline void RegisterPoint(
    const std::string& name,
    std::function<std::pair<bench_util::RunResult,
                            std::map<std::string, double>>()>
        point) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [point = std::move(point)](benchmark::State& state) {
        for (auto _ : state) {
          auto [r, extra] = point();
          state.SetIterationTime(r.sim_seconds > 0 ? r.sim_seconds : 1e-9);
          state.counters["sim_GBps"] = r.gbps;
          for (const auto& [key, v] : extra) state.counters[key] = v;
          state.SetBytesProcessed(
              static_cast<std::int64_t>(r.payload_bytes));
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Process-wide host thread pool shared by every figure point. It is
/// constructed on first use and reused across points and benchmark
/// iterations, so the host-parallel companion series never constructs
/// std::threads in a hot loop.
inline ec::ThreadPool& HostPool() { return ec::ThreadPool::Shared(); }

/// Register one host-pool run with the benchmark tooling: the point's
/// time is the real wall time of the pooled run and the full set of
/// work-stealing pool counters rides along, so they appear in
/// google-benchmark's JSON/CSV output as well as the human tables.
inline void RegisterHostPoint(const std::string& name,
                              const bench_util::HostRunResult& r) {
  bench_util::RunResult as_run;
  as_run.sim_seconds = r.seconds;
  as_run.gbps = r.gbps;
  as_run.payload_bytes = r.payload_bytes;
  RegisterPoint(name, [as_run, r] {
    return std::pair{
        as_run,
        std::map<std::string, double>{
            {"pool_tasks", static_cast<double>(r.pool.tasks_run)},
            {"pool_tasks_skipped",
             static_cast<double>(r.pool.tasks_skipped)},
            {"pool_steals", static_cast<double>(r.pool.steals)},
            {"pool_parallel_fors",
             static_cast<double>(r.pool.parallel_fors)},
            {"pool_max_queue",
             static_cast<double>(r.pool.max_queue_depth)}}};
  });
}

}  // namespace fig

namespace fig {

/// Collects a figure's points: prints the paper-shape table on stdout,
/// then replays every point through google-benchmark (cached results,
/// simulated time) so the standard bench tooling sees them too.
class FigureBench {
 public:
  FigureBench(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), table_(std::move(headers)) {}

  void point(const std::string& bench_name,
             std::vector<std::string> row_cells,
             const bench_util::RunResult& r,
             std::map<std::string, double> extras = {}) {
    table_.row(std::move(row_cells));
    RegisterPoint(bench_name, [r, extras] { return std::pair{r, extras}; });
  }

  /// Row for a configuration with no result (e.g. Zerasure, k > 32).
  void missing(std::vector<std::string> row_cells) {
    table_.row(std::move(row_cells));
  }

  /// Subtitle printed above the host-pool companion series.
  void host_series_title(std::string title) {
    host_title_ = std::move(title);
  }

  /// One host-pool companion point. Every figure shares this row shape,
  /// so the pool counters (tasks run, steals, max queue depth, ...) are
  /// machine-readable: the series is written as <stem>_host.csv under
  /// DIALGA_CSV_DIR and each point is registered with google-benchmark
  /// (counters in its JSON/CSV output), in addition to the human table.
  void host_point(const std::string& bench_name, const std::string& id,
                  const bench_util::HostRunResult& r, std::size_t workers) {
    host_table_.row({id, std::to_string(workers),
                     bench_util::Table::num(r.gbps, 3),
                     bench_util::Table::num(r.seconds, 6),
                     std::to_string(r.stripes),
                     std::to_string(r.failed_stripes),
                     std::to_string(r.pool.tasks_run),
                     std::to_string(r.pool.tasks_skipped),
                     std::to_string(r.pool.steals),
                     std::to_string(r.pool.parallel_fors),
                     std::to_string(r.pool.max_queue_depth)});
    host_points_ = true;
    RegisterHostPoint(bench_name, r);
  }

  /// Record a paper-shape assertion; the checklist is printed after the
  /// series so a figure run is self-validating against the paper's
  /// qualitative claims.
  void check(const std::string& claim, bool holds) {
    checks_.emplace_back(claim, holds);
  }

  int run(int argc, char** argv) {
    std::cout << "\n=== " << title_ << " ===\n";
    table_.print(std::cout);
    if (host_points_) {
      std::cout << "\n--- " << host_title_ << " ---\n";
      host_table_.print(std::cout);
    }
    if (!checks_.empty()) {
      std::cout << "\npaper-shape checks:\n";
      std::size_t passed = 0;
      for (const auto& [claim, ok] : checks_) {
        std::cout << "  [" << (ok ? "PASS" : "FAIL") << "] " << claim
                  << "\n";
        passed += ok ? 1 : 0;
      }
      std::cout << "  " << passed << "/" << checks_.size()
                << " shape checks hold\n";
    }
    std::cout << std::endl;
    write_csv(argc > 0 ? argv[0] : "figure");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // Scrape last: the benchmark replay above re-runs no workload (the
    // points are cached results), so the registry now holds the whole
    // figure run.
    write_metrics(argc > 0 ? argv[0] : "figure");
    return 0;
  }

 private:
  static std::string Stem(const std::string& argv0) {
    std::string stem = argv0;
    if (const auto slash = stem.find_last_of('/');
        slash != std::string::npos) {
      stem = stem.substr(slash + 1);
    }
    return stem;
  }

  /// With DIALGA_CSV_DIR set, drop the series as <dir>/<binary>.csv so
  /// plotting scripts can pick every figure up; the host-pool companion
  /// series (pool counters included) goes to <binary>_host.csv.
  void write_csv(const std::string& argv0) const {
    const char* dir = std::getenv("DIALGA_CSV_DIR");
    if (dir == nullptr) return;
    const std::string stem = Stem(argv0);
    std::ofstream out(std::string(dir) + "/" + stem + ".csv");
    if (out) table_.print_csv(out);
    if (host_points_) {
      std::ofstream host_out(std::string(dir) + "/" + stem + "_host.csv");
      if (host_out) host_table_.print_csv(host_out);
    }
  }

  /// Final metrics-registry scrape in the same schema the service
  /// exports: next to the CSVs as <binary>_metrics.prom and
  /// <binary>_metrics.jsonl when DIALGA_CSV_DIR is set, plus whatever
  /// single path DIALGA_METRICS_OUT names (format by extension).
  static void write_metrics(const std::string& argv0) {
    if (const char* dir = std::getenv("DIALGA_CSV_DIR"); dir != nullptr) {
      const std::string base = std::string(dir) + "/" + Stem(argv0);
      obs::DumpMetricsToFile(base + "_metrics.prom");
      obs::DumpMetricsToFile(base + "_metrics.jsonl");
    }
    if (const char* out = std::getenv("DIALGA_METRICS_OUT");
        out != nullptr && *out != '\0') {
      obs::DumpMetricsToFile(out);
    }
  }

  std::string title_;
  bench_util::Table table_;
  std::string host_title_ = "host work-stealing pool series";
  bench_util::Table host_table_{
      {"id", "workers", "host_GBps", "seconds", "stripes", "failed",
       "tasks_run", "tasks_skipped", "steals", "parallel_fors",
       "max_queue_depth"}};
  bool host_points_ = false;
  std::vector<std::pair<std::string, bool>> checks_;
};

}  // namespace fig
