// Figure 13: multi-thread encode scalability on PM for RS(28,24) at
// 1 KB and 4 KB blocks, and RS(52,48) at 1 KB (ISA-L vs decompose vs
// DIALGA).
//
// Paper shape: RS(28,24)/1KB — ISA-L bottlenecks around 8 threads,
// DIALGA scales further (~+50 % peak); at 4 KB the streamer is already
// efficient and DIALGA only helps once excessive concurrency degrades
// ISA-L. RS(52,48) — DIALGA way ahead of both ISA-L (up to +182.8 %)
// and the decompose strategy (up to +140.3 %); everyone eventually
// degrades when thread x stream count overflows the 96 KB read buffer.
#include <map>
#include <tuple>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.13  Multi-thread encode scalability (PM)",
      {"config", "threads", "ISA-L", "ISA-L-D", "DIALGA"});

  struct Config {
    std::size_t k, m, bs;
  };
  const Config configs[] = {{28, 24, 1024}, {28, 24, 4096}, {52, 48, 1024}};

  // (bs or k marker, threads, system) -> GB/s
  std::map<std::tuple<std::size_t, std::size_t, int>, double> gbps;
  for (const Config& c : configs) {
    for (const std::size_t n : {1u, 2u, 4u, 6u, 8u, 10u, 12u, 16u, 18u}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = c.k;
      wl.m = c.m;
      wl.block_size = c.bs;
      wl.threads = n;
      wl.total_data_bytes = (8 + 3 * n) * fig::kMiB;

      const std::string label = "RS(" + std::to_string(c.k) + "," +
                                std::to_string(c.m) + ")/" +
                                std::to_string(c.bs) + "B";
      std::vector<std::string> row{label, std::to_string(n)};
      for (const fig::System s :
           {fig::System::kIsal, fig::System::kIsalD, fig::System::kDialga}) {
        const auto r = fig::RunEncodeSystem(s, cfg, wl);
        gbps[{c.k * 100000 + c.bs, n, static_cast<int>(s)}] = r.gbps;
        row.push_back(bench_util::Table::num(r.gbps));
        fig::RegisterPoint(std::string("fig13/") + fig::Name(s) + "/" +
                               label + "/threads:" + std::to_string(n),
                           [r] {
                             return std::pair{
                                 r, std::map<std::string, double>{}};
                           });
      }
      figure.missing(std::move(row));
    }
  }
  using fig::System;
  const auto g = [&](std::size_t k, std::size_t bs, std::size_t n,
                     System s) {
    return gbps[{k * 100000 + bs, n, static_cast<int>(s)}];
  };
  figure.check("RS(28,24)/1KB: DIALGA sustains higher peak than ISA-L",
               g(28, 1024, 12, System::kDialga) >
                   1.1 * g(28, 1024, 12, System::kIsal));
  figure.check("RS(28,24)/4KB: DIALGA and ISA-L are close at <=8 threads",
               g(28, 4096, 8, System::kDialga) <
                   1.15 * g(28, 4096, 8, System::kIsal));
  figure.check("RS(52,48): DIALGA far ahead of ISA-L (mid concurrency)",
               g(52, 1024, 4, System::kDialga) >
                   2.0 * g(52, 1024, 4, System::kIsal));
  figure.check("RS(52,48): DIALGA ahead of the decompose strategy",
               g(52, 1024, 4, System::kDialga) >
                   1.3 * g(52, 1024, 4, System::kIsalD));
  figure.check("RS(52,48): ISA-L degrades after ~8-10 threads (Eq. 1)",
               g(52, 1024, 10, System::kIsal) <
                   0.9 * g(52, 1024, 8, System::kIsal));

  // Host-pool companion series: both figure code shapes encoded
  // functionally on the one persistent pool, reused across all points
  // (stripe costs differ by ~3.6x between the shapes, which is the load
  // imbalance work stealing absorbs).
  {
    figure.host_series_title("host work-stealing pool, functional encode");
    for (const Config& c : {Config{28, 24, 1024}, Config{52, 48, 1024}}) {
      const ec::IsalCodec host_codec(c.k, c.m);
      bench_util::WorkloadConfig hwl;
      hwl.k = c.k;
      hwl.m = c.m;
      hwl.block_size = c.bs;
      hwl.total_data_bytes = 2 * fig::kMiB;
      const auto hr =
          bench_util::RunHostEncode(hwl, host_codec, fig::HostPool());
      const std::string label = "RS(" + std::to_string(c.k) + "," +
                                std::to_string(c.m) + ")/" +
                                std::to_string(c.bs) + "B";
      figure.host_point("fig13/host_pool/" + label, label, hr,
                        fig::HostPool().worker_count());
    }
  }
  return figure.run(argc, argv);
}
