#include <iostream>
#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "dialga/dialga.h"
#include "ec/isal.h"
#include "ec/isal_decompose.h"
#include "ec/xor_codec.h"

using namespace bench_util;

static void run_k(std::size_t k, std::size_t m) {
  std::cout << "\n== k=" << k << " m=" << m << " 1KB PM single-thread ==\n";
  simmem::SimConfig cfg;
  WorkloadConfig wl;
  wl.k = k; wl.m = m; wl.block_size = 1024; wl.total_data_bytes = 16ull<<20;
  Table t({"system", "GB/s", "xors"});
  { ec::IsalCodec c(k, m); auto r = RunEncode(cfg, wl, c); t.row({"ISA-L", Table::num(r.gbps), "-"}); }
  { ec::IsalDecomposeCodec c(k, m); auto r = RunEncode(cfg, wl, c); t.row({"ISA-L-D", Table::num(r.gbps), "-"}); }
  if (auto z = ec::MakeZerasure(k, m)) { auto r = RunEncode(cfg, wl, *z); t.row({"Zerasure", Table::num(r.gbps), std::to_string(z->schedule_xor_count())}); }
  else t.row({"Zerasure", "n/a", "-"});
  { auto c = ec::MakeCerasure(k, m); auto r = RunEncode(cfg, wl, *c); t.row({"Cerasure", Table::num(r.gbps), std::to_string(c->schedule_xor_count())}); }
  { dialga::DialgaCodec d(k, m);
    auto p = d.make_encode_provider({k, m, wl.block_size, 1}, cfg);
    auto r = RunTimed(cfg, wl, *p); t.row({"DIALGA", Table::num(r.gbps), "-"}); }
  t.print(std::cout);
}

int main() {
  run_k(12, 4);
  run_k(28, 4);
  run_k(48, 4);
  return 0;
}
