// Figure 17: CPU cache-miss stall cycles per load during encoding
// (1 KB blocks, PM), normalized by the number of loads.
//
// Paper shape: RS(12,8) — ISA-L stalls ~2x DIALGA (matching the ~2x
// throughput gap); RS(28,24) — the streamer is efficient, smaller gap;
// RS(52,48) — DIALGA cuts ~35 % vs the decompose strategy (better
// prefetch + no parity reloading).
#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.17  LLC-miss stall per load (cycles @3.3GHz, 1KB blocks, PM)",
      {"code", "ISA-L", "ISA-L-D", "DIALGA", "DIALGA_vs_ISA-L"});

  const std::pair<std::size_t, std::size_t> codes[] = {
      {12, 8}, {28, 24}, {52, 48}};
  for (const auto& [k, m] : codes) {
    simmem::SimConfig cfg;
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = m;
    wl.block_size = 1024;
    wl.total_data_bytes = 16 * fig::kMiB;

    const std::string code =
        "RS(" + std::to_string(k) + "," + std::to_string(m) + ")";
    std::vector<std::string> row{code};
    double isal_cycles = 0.0, dialga_cycles = 0.0;
    for (const fig::System s :
         {fig::System::kIsal, fig::System::kIsalD, fig::System::kDialga}) {
      const auto r = fig::RunEncodeSystem(s, cfg, wl);
      const double cycles_per_load = r.pmu.load_stall_ns *
                                     cfg.cpu_freq_ghz /
                                     static_cast<double>(r.pmu.loads);
      if (s == fig::System::kIsal) isal_cycles = cycles_per_load;
      if (s == fig::System::kDialga) dialga_cycles = cycles_per_load;
      row.push_back(bench_util::Table::num(cycles_per_load, 1));
      fig::RegisterPoint(
          std::string("fig17/") + fig::Name(s) + "/" + code,
          [r, cycles_per_load] {
            return std::pair{
                r, std::map<std::string, double>{
                       {"stall_cycles_per_load", cycles_per_load}}};
          });
    }
    row.push_back(bench_util::Table::pct(dialga_cycles / isal_cycles));
    figure.missing(std::move(row));
  }
  return figure.run(argc, argv);
}
