// Generality (paper section 6): DIALGA's strategies target general PM
// characteristics — high access latency, internal buffering, coarse
// media granularity — so they should carry over to CXL-attached
// DRAM-buffered flash devices like Samsung CMM-H. Re-run the headline
// comparison on the CmmHLike() preset.
#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Generality  encode throughput on a CMM-H-like device (1KB blocks)",
      {"k", "device", "ISA-L", "DIALGA", "gain"});

  bool gains_everywhere = true;
  for (const std::size_t k : {12u, 28u, 48u}) {
    for (const bool cmmh : {false, true}) {
      const simmem::SimConfig cfg =
          cmmh ? simmem::CmmHLike() : simmem::XeonGold6240Optane100();
      bench_util::WorkloadConfig wl;
      wl.k = k;
      wl.m = 4;
      wl.block_size = 1024;
      wl.total_data_bytes = 16 * fig::kMiB;

      const auto base = fig::RunEncodeSystem(fig::System::kIsal, cfg, wl);
      const auto ours = fig::RunEncodeSystem(fig::System::kDialga, cfg, wl);
      if (cmmh) gains_everywhere = gains_everywhere && ours.gbps > 1.2 * base.gbps;
      const std::string device = cmmh ? "CMM-H" : "Optane";
      figure.point(
          "cmmh/" + device + "/k:" + std::to_string(k),
          {std::to_string(k), device, bench_util::Table::num(base.gbps),
           bench_util::Table::num(ours.gbps),
           bench_util::Table::num(ours.gbps / base.gbps) + "x"},
          ours, {{"isal_GBps", base.gbps}});
    }
  }
  figure.check("DIALGA's gain carries to the CMM-H-like device (sec. 6)",
               gains_everywhere);
  return figure.run(argc, argv);
}
