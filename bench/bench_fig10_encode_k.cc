// Figure 10: encode throughput vs number of data blocks k (1 KB blocks,
// m = 4, PM) for all five systems.
//
// Paper shape: narrow stripes (k < 20): DIALGA > ISA-L > ISA-L-D >
// Cerasure > Zerasure, DIALGA +53.9-102 % over the best alternative.
// Wide stripes (k > 32): ISA-L collapses (streamer table overflow),
// decompose recovers part of it (ISA-L-D above Cerasure), Zerasure has
// no results, DIALGA leads by ~3x over ISA-L. At k = 32 the streamer
// peaks and DIALGA's margin is smallest.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.10  Encode throughput vs k (m=4, 1KB blocks, PM)",
      {"k", "ISA-L", "ISA-L-D", "Zerasure", "Cerasure", "DIALGA",
       "DIALGA/best-other"});

  std::map<std::pair<std::size_t, int>, double> gbps;  // (k, system)
  for (const std::size_t k : {4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u, 40u,
                              48u, 56u}) {
    simmem::SimConfig cfg;
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = 4;
    wl.block_size = 1024;
    wl.total_data_bytes = 24 * fig::kMiB;

    std::vector<std::string> row{std::to_string(k)};
    double best_other = 0.0;
    double dialga = 0.0;
    for (const fig::System s :
         {fig::System::kIsal, fig::System::kIsalD, fig::System::kZerasure,
          fig::System::kCerasure, fig::System::kDialga}) {
      const auto r = fig::RunEncodeSystem(s, cfg, wl);
      if (r.payload_bytes == 0) {
        row.push_back("n/a");
        continue;
      }
      gbps[{k, static_cast<int>(s)}] = r.gbps;
      row.push_back(bench_util::Table::num(r.gbps));
      if (s == fig::System::kDialga) {
        dialga = r.gbps;
      } else {
        best_other = std::max(best_other, r.gbps);
      }
      fig::RegisterPoint(
          std::string("fig10/") + fig::Name(s) + "/k:" + std::to_string(k),
          [r] {
            return std::pair{r, std::map<std::string, double>{}};
          });
    }
    row.push_back(bench_util::Table::num(dialga / best_other) + "x");
    figure.missing(std::move(row));
  }
  const auto g = [&](std::size_t k, fig::System s) {
    return gbps[{k, static_cast<int>(s)}];
  };
  using fig::System;
  figure.check("narrow: ISA-L beats the XOR codecs",
               g(12, System::kIsal) > g(12, System::kCerasure) &&
                   g(12, System::kIsal) > g(12, System::kZerasure));
  figure.check("wide: ISA-L collapses past k=32",
               g(48, System::kIsal) < 0.8 * g(32, System::kIsal));
  figure.check("wide: decompose (ISA-L-D) recovers part of the loss",
               g(48, System::kIsalD) > 1.2 * g(48, System::kIsal));
  figure.check("Zerasure has no wide-stripe results",
               gbps.find({48, static_cast<int>(System::kZerasure)}) ==
                   gbps.end());
  bool dialga_wins = true;
  for (const std::size_t k : {4u, 12u, 24u, 32u, 48u}) {
    for (const System s : {System::kIsal, System::kIsalD,
                           System::kCerasure}) {
      dialga_wins = dialga_wins && g(k, System::kDialga) > g(k, s);
    }
  }
  figure.check("DIALGA wins at every stripe width", dialga_wins);
  figure.check("DIALGA's wide-stripe margin over ISA-L is ~3x or more",
               g(48, System::kDialga) > 2.5 * g(48, System::kIsal));
  return figure.run(argc, argv);
}
