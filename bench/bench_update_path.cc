// Extension: small-write parity updates on PM (the workload the
// paper's related work — CodePM, TVARAK, Vilamb — addresses; section
// 4.1 notes DIALGA's scheduling applies to coding tasks beyond full
// encode). Two questions:
//
//  1. Where is the crossover between delta updates (RMW of 1+m blocks
//     over the touched lines) and a full stripe re-encode?
//  2. How much does prefetch scheduling help the (load-dominated) RMW
//     path itself?
#include <chrono>
#include <numeric>
#include <random>

#include "ec/parallel.h"
#include "ec/update.h"
#include "fig_common.h"

namespace {

/// Timed run of `updates` delta updates of `len` bytes each, at random
/// aligned offsets of random stripes.
bench_util::RunResult RunUpdates(const simmem::SimConfig& cfg,
                                 std::size_t k, std::size_t m,
                                 std::size_t bs, std::size_t len,
                                 const ec::IsalPlanOptions& opts) {
  const ec::IsalCodec codec(k, m);
  const ec::UpdateEngine engine(codec);

  bench_util::WorkloadConfig wl;
  wl.k = k;
  wl.m = m;
  wl.block_size = bs;
  wl.total_data_bytes = 4 * fig::kMiB;  // number of stripes touched
  bench_util::Workload workload = bench_util::BuildWorkload(wl);

  simmem::MemorySystem mem(cfg, 1);
  std::mt19937_64 rng(9);
  std::uint64_t payload = 0;
  for (const auto& stripe : workload.work[0].stripes) {
    const std::size_t max_off = bs - len;
    const std::size_t offset =
        max_off == 0 ? 0
                     : (rng() % (max_off / simmem::kCacheLineBytes + 1)) *
                           simmem::kCacheLineBytes;
    const ec::EncodePlan plan =
        engine.update_plan(bs, offset, len, cfg.cost, opts);
    // Slot 0 = a random data block of the stripe, slots 1..m = parity.
    std::vector<std::uint64_t> slots;
    slots.push_back(stripe[rng() % k]);
    for (std::size_t j = 0; j < m; ++j) slots.push_back(stripe[k + j]);
    ec::RunPlan(mem, 0, plan, ec::SlotBinding{slots, {}});
    payload += len;
  }
  mem.flush_pm_writes();
  bench_util::RunResult r;
  r.payload_bytes = payload;
  r.sim_seconds = mem.max_clock() * 1e-9;
  r.gbps = payload / mem.max_clock();
  r.pmu = mem.pmu();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Extension  small-write update path, RS(12,4) 1KB blocks on PM",
      {"update_B", "plain GB/s", "DIALGA GB/s", "gain",
       "vs_reencode_traffic", "media_write_amp"});

  simmem::SimConfig cfg;
  const std::size_t k = 12, m = 4, bs = 1024;

  for (const std::size_t len : {64u, 128u, 256u, 512u, 1024u}) {
    const auto plain = RunUpdates(cfg, k, m, bs, len, {});
    ec::IsalPlanOptions dialga_opts;
    dialga_opts.prefetch_distance = 1 + m;  // one RMW row ahead
    dialga_opts.xpline_first_distance = 1 + m + 4;
    const auto tuned = RunUpdates(cfg, k, m, bs, len, dialga_opts);

    const double traffic_ratio =
        static_cast<double>(ec::UpdateEngine::update_traffic_bytes(len, m)) /
        static_cast<double>(
            ec::UpdateEngine::reencode_traffic_bytes(bs, k, m));
    figure.point(
        "update/len:" + std::to_string(len),
        {std::to_string(len), bench_util::Table::num(plain.gbps, 3),
         bench_util::Table::num(tuned.gbps, 3),
         bench_util::Table::pct(tuned.gbps / plain.gbps - 1.0),
         bench_util::Table::pct(traffic_ratio),
         bench_util::Table::num(tuned.pmu.media_write_amplification())},
        tuned, {{"plain_GBps", plain.gbps}});
  }

  // Host-pool delta updates: real RMW parity updates across stripes on
  // the persistent work-stealing pool (one update per stripe, uneven
  // offsets). Reuses the same shared pool as the other benches.
  {
    const ec::IsalCodec codec(k, m);
    const ec::UpdateEngine engine(codec);
    bench_util::WorkloadConfig hwl;
    hwl.k = k;
    hwl.m = m;
    hwl.block_size = bs;
    hwl.total_data_bytes = 2 * fig::kMiB;
    const std::size_t stripes = hwl.total_data_bytes / (k * bs);
    std::vector<std::byte> storage(stripes * (k + m) * bs);
    const auto block = [&](std::size_t s, std::size_t b) {
      return storage.data() + (s * (k + m) + b) * bs;
    };
    // Consistent parity first, so the updates maintain a valid stripe.
    {
      std::vector<std::vector<const std::byte*>> data(stripes);
      std::vector<std::vector<std::byte*>> parity(stripes);
      std::vector<ec::StripeBuffers> buffers;
      for (std::size_t s = 0; s < stripes; ++s) {
        for (std::size_t i = 0; i < k; ++i) data[s].push_back(block(s, i));
        for (std::size_t j = 0; j < m; ++j)
          parity[s].push_back(block(s, k + j));
        buffers.push_back({data[s], parity[s]});
      }
      ec::ParallelEncode(fig::HostPool(), codec, bs, buffers);
    }

    const std::size_t len = 256;
    const auto before = fig::HostPool().stats();
    const auto t0 = std::chrono::steady_clock::now();
    fig::HostPool().parallel_for(stripes, [&](std::size_t s) {
      std::mt19937_64 rng(s + 1);
      std::vector<std::byte> fresh(len);
      for (auto& b : fresh) b = static_cast<std::byte>(rng());
      const std::size_t offset =
          (rng() % ((bs - len) / simmem::kCacheLineBytes + 1)) *
          simmem::kCacheLineBytes;
      std::vector<std::byte*> parity;
      for (std::size_t j = 0; j < m; ++j) parity.push_back(block(s, k + j));
      engine.apply(bs, s % k, offset, fresh, block(s, s % k), parity);
    });
    const auto t1 = std::chrono::steady_clock::now();
    const auto delta = fig::HostPool().stats() - before;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double gbps =
        secs > 0.0 ? static_cast<double>(stripes * len) / (secs * 1e9) : 0.0;
    bench_util::HostRunResult hr;
    hr.seconds = secs;
    hr.gbps = gbps;
    hr.payload_bytes = stripes * len;
    hr.stripes = stripes;
    hr.pool = delta;
    figure.host_series_title(
        "host work-stealing pool, delta parity updates");
    figure.host_point("update/host_pool/delta",
                      "updates:" + std::to_string(stripes), hr,
                      fig::HostPool().worker_count());
    figure.check("host pool applied one update per stripe",
                 delta.tasks_run == stripes);
  }
  return figure.run(argc, argv);
}
