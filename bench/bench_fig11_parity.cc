// Figure 11: encode throughput vs number of parity blocks m for several
// stripe widths (1 KB blocks, PM).
//
// Paper shape: XOR-based codecs degrade non-linearly as m grows (their
// XOR count explodes); table-lookup codecs degrade gently; DIALGA wins
// at every m (+20.1-96.6 % over the best alternative), and on wide
// stripes its advantage is stable across m (load-dominated).
#include <algorithm>
#include <map>
#include <tuple>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.11  Encode throughput vs m (1KB blocks, PM)",
      {"k", "m", "ISA-L", "ISA-L-D", "Zerasure", "Cerasure", "DIALGA"});

  std::map<std::tuple<std::size_t, std::size_t, int>, double> gbps;
  for (const std::size_t k : {8u, 12u, 24u, 52u}) {
    for (const std::size_t m : {2u, 3u, 4u, 6u, 8u}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = k;
      wl.m = m;
      wl.block_size = 1024;
      wl.total_data_bytes = 16 * fig::kMiB;

      std::vector<std::string> row{std::to_string(k), std::to_string(m)};
      for (const fig::System s :
           {fig::System::kIsal, fig::System::kIsalD, fig::System::kZerasure,
            fig::System::kCerasure, fig::System::kDialga}) {
        const auto r = fig::RunEncodeSystem(s, cfg, wl);
        if (r.payload_bytes == 0) {
          row.push_back("n/a");
          continue;
        }
        gbps[{k, m, static_cast<int>(s)}] = r.gbps;
        row.push_back(bench_util::Table::num(r.gbps));
        fig::RegisterPoint(std::string("fig11/") + fig::Name(s) +
                               "/k:" + std::to_string(k) +
                               "/m:" + std::to_string(m),
                           [r] {
                             return std::pair{
                                 r, std::map<std::string, double>{}};
                           });
      }
      figure.missing(std::move(row));
    }
  }
  using fig::System;
  const auto g = [&](std::size_t k, std::size_t m, System s) {
    return gbps[{k, m, static_cast<int>(s)}];
  };
  figure.check("XOR codecs degrade faster with m than table codecs",
               g(12, 2, System::kCerasure) / g(12, 8, System::kCerasure) >
                   g(12, 2, System::kIsal) / g(12, 8, System::kIsal));
  bool wins = true;
  for (const std::size_t m : {2u, 4u, 8u}) {
    wins = wins && g(12, m, System::kDialga) > g(12, m, System::kIsal) &&
           g(12, m, System::kDialga) > g(12, m, System::kCerasure);
  }
  figure.check("DIALGA wins at every m", wins);
  // Paper: "For wide stripes such as RS(52,48), DIALGA maintains a
  // performance advantage with minimal degradation as m varies" — the
  // claim is about the sustained advantage (load-dominated bottleneck),
  // checked as a >2x margin over the best alternative at every m.
  bool wide_margin = true;
  for (const std::size_t m : {2u, 4u, 8u}) {
    const double best_other =
        std::max({g(52, m, System::kIsal), g(52, m, System::kIsalD),
                  g(52, m, System::kCerasure)});
    wide_margin = wide_margin && g(52, m, System::kDialga) > 2.0 * best_other;
  }
  figure.check("wide stripes: DIALGA keeps a >2x margin at every m",
               wide_margin);
  return figure.run(argc, argv);
}
