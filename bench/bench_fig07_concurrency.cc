// Figure 7: multi-thread scalability of RS(28,24) 1 KB encoding on PM,
// HW prefetcher on vs off.
//
// Paper shape: with the prefetcher on, throughput plateaus (and the PM
// read buffer thrashes) around 8-12 threads; with it off, scaling is
// near-linear at lower absolute throughput until the demand working set
// itself overflows the 96 KB buffer.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.7  RS(28,24) 1KB thread scaling on PM, HW prefetch on/off",
      {"threads", "hw_pf", "GB/s", "media_amp", "buffer_wasted_fills"});

  std::map<std::pair<std::size_t, bool>, double> gbps, amp;
  for (const std::size_t n : {1u, 2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u, 18u}) {
    for (const bool pf : {false, true}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = 28;
      wl.m = 24;
      wl.block_size = 1024;
      wl.threads = n;
      wl.total_data_bytes = (8 + 3 * n) * fig::kMiB;
      const auto r = fig::RunEncodeSystem(fig::System::kIsal, cfg, wl,
                                          ec::SimdWidth::kAvx512, pf);
      gbps[{n, pf}] = r.gbps;
      amp[{n, pf}] = r.media_amplification();
      figure.point(
          "fig7/threads:" + std::to_string(n) + (pf ? "/pf_on" : "/pf_off"),
          {std::to_string(n), pf ? "on" : "off",
           bench_util::Table::num(r.gbps),
           bench_util::Table::num(r.media_amplification()),
           std::to_string(r.pmu.pm_buffer_wasted_fills)},
          r,
          {{"media_amp", r.media_amplification()},
           {"threads", static_cast<double>(n)}});
    }
  }
  figure.check("prefetcher-on throughput plateaus by 8-12 threads",
               gbps[{18, true}] < 1.15 * gbps[{12, true}]);
  figure.check("prefetcher-off scales near-linearly to 8 threads",
               gbps[{8, false}] > 3.0 * gbps[{1, false}]);
  figure.check("high concurrency thrashes the read buffer (amp explodes)",
               amp[{18, true}] > 1.8 * amp[{1, true}]);
  figure.check("prefetcher-on beats prefetcher-off at low concurrency",
               gbps[{1, true}] > gbps[{1, false}]);

  // Host-pool companion series: the same RS(28,24)/1KB encode executed
  // functionally on the persistent work-stealing pool. Every iteration
  // reuses the one shared pool (no std::thread construction in the hot
  // loop); the pool counters make the reuse visible.
  {
    const ec::IsalCodec host_codec(28, 24);
    bench_util::WorkloadConfig hwl;
    hwl.k = 28;
    hwl.m = 24;
    hwl.block_size = 1024;
    hwl.total_data_bytes = 2 * fig::kMiB;
    figure.host_series_title("host work-stealing pool, RS(28,24) 1KB encode");
    bool each_stripe_once = true;
    for (int iter = 0; iter < 3; ++iter) {
      hwl.seed = 100 + iter;
      const auto hr =
          bench_util::RunHostEncode(hwl, host_codec, fig::HostPool());
      each_stripe_once &= hr.pool.tasks_run == hr.stripes;
      figure.host_point("fig7/host_pool/iter:" + std::to_string(iter),
                        "iter:" + std::to_string(iter), hr,
                        fig::HostPool().worker_count());
    }
    figure.check("host pool runs every stripe exactly once per iteration",
                 each_stripe_once);
  }
  return figure.run(argc, argv);
}
