// Figure 18: breakdown of DIALGA's 1 KB encode throughput across its
// mechanisms: Vanilla (everything off), +SW (pipelined software
// prefetch), +HW (hardware prefetching re-enabled), +BF (buffer-
// friendly prefetch).
//
// Paper shape: +SW contributes 29.4-48.6 %, +HW another 8.6-15.9 %
// (single-thread pressure is low), +BF another 18.3-29.3 %; BF helps
// narrow stripes least (their loads already have spatial locality).
#include <map>
#include <string>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.18  DIALGA mechanism breakdown (1KB blocks, PM, 1 thread)",
      {"code", "variant", "GB/s", "step_gain"});

  const std::pair<std::size_t, std::size_t> codes[] = {
      {8, 4}, {12, 4}, {24, 4}, {48, 4}};
  const std::pair<const char*, dialga::Features> variants[] = {
      {"Vanilla", dialga::Features::vanilla()},
      {"+SW", dialga::Features::sw_only()},
      {"+HW", dialga::Features::sw_hw()},
      {"+BF", dialga::Features::all()},
  };

  bool monotone = true;
  std::map<std::pair<std::size_t, std::string>, double> gbps;
  for (const auto& [k, m] : codes) {
    simmem::SimConfig cfg;
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = m;
    wl.block_size = 1024;
    wl.total_data_bytes = 16 * fig::kMiB;
    const std::string code =
        "RS(" + std::to_string(k) + "," + std::to_string(m) + ")";

    double prev = 0.0;
    for (const auto& [label, features] : variants) {
      const dialga::DialgaCodec codec(k, m, ec::SimdWidth::kAvx512,
                                      features);
      auto provider =
          codec.make_encode_provider({k, m, wl.block_size, 1}, cfg);
      const auto r = bench_util::RunTimed(cfg, wl, *provider);
      figure.point(
          "fig18/" + code + "/" + label,
          {code, label, bench_util::Table::num(r.gbps),
           prev > 0 ? bench_util::Table::pct(r.gbps / prev - 1.0) : "-"},
          r);
      if (prev > 0 && r.gbps < 0.97 * prev) monotone = false;
      gbps[{k, label}] = r.gbps;
      prev = r.gbps;
    }
  }
  figure.check("every mechanism contributes (monotone steps)", monotone);
  figure.check("+SW is a large step everywhere",
               gbps[{12, "+SW"}] > 1.25 * gbps[{12, "Vanilla"}] &&
                   gbps[{48, "+SW"}] > 1.25 * gbps[{48, "Vanilla"}]);
  figure.check("+BF helps wide stripes more than narrow (paper's note)",
               gbps[{48, "+BF"}] / gbps[{48, "+HW"}] >
                   gbps[{8, "+BF"}] / gbps[{8, "+HW"}]);
  return figure.run(argc, argv);
}
