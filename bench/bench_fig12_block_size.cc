// Figure 12: encode throughput vs block size for RS(12,8) and RS(28,24)
// on PM, all systems.
//
// Paper shape: at 256/512 B the HW prefetcher is useless and DIALGA's
// software prefetching wins big (+63.8-180.5 % over the best
// alternative at <= 1 KB); at 4 KB the streamer is at peak efficiency
// and DIALGA's margin shrinks; 5 KB behaves mostly like 4 KB
// (improvement limited to single digits-25 %).
#include <map>
#include <tuple>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.12  Encode throughput vs block size (PM)",
      {"code", "block_B", "ISA-L", "ISA-L-D", "Zerasure", "Cerasure",
       "DIALGA"});

  std::map<std::tuple<std::size_t, std::size_t, int>, double> gbps;
  const std::pair<std::size_t, std::size_t> codes[] = {{12, 8}, {28, 24}};
  for (const auto& [k, m] : codes) {
    for (const std::size_t bs : {256u, 512u, 1024u, 2048u, 4096u, 5120u}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = k;
      wl.m = m;
      wl.block_size = bs;
      wl.total_data_bytes = 24 * fig::kMiB;

      const std::string code =
          "RS(" + std::to_string(k) + "," + std::to_string(m) + ")";
      std::vector<std::string> row{code, std::to_string(bs)};
      for (const fig::System s :
           {fig::System::kIsal, fig::System::kIsalD, fig::System::kZerasure,
            fig::System::kCerasure, fig::System::kDialga}) {
        const auto r = fig::RunEncodeSystem(s, cfg, wl);
        if (r.payload_bytes == 0) {
          row.push_back("n/a");
          continue;
        }
        gbps[{k, bs, static_cast<int>(s)}] = r.gbps;
        row.push_back(bench_util::Table::num(r.gbps));
        fig::RegisterPoint(std::string("fig12/") + fig::Name(s) + "/" +
                               code + "/bs:" + std::to_string(bs),
                           [r] {
                             return std::pair{
                                 r, std::map<std::string, double>{}};
                           });
      }
      figure.missing(std::move(row));
    }
  }
  using fig::System;
  const auto g = [&](std::size_t k, std::size_t bs, System s) {
    return gbps[{k, bs, static_cast<int>(s)}];
  };
  figure.check("DIALGA's margin is largest at <=1 KB blocks",
               g(12, 1024, System::kDialga) / g(12, 1024, System::kIsal) >
                   g(12, 4096, System::kDialga) /
                       g(12, 4096, System::kIsal));
  figure.check("4 KB: DIALGA improvement is limited (streamer at peak)",
               g(12, 4096, System::kDialga) <
                   1.1 * g(12, 4096, System::kIsal));
  figure.check("5 KB: small improvement (4 KB-aligned prefix dominates)",
               g(12, 5120, System::kDialga) >
                   1.02 * g(12, 5120, System::kIsal) &&
                   g(12, 5120, System::kDialga) <
                       1.35 * g(12, 5120, System::kIsal));
  figure.check("XOR codecs degrade further on sub-KB packets",
               g(28, 256, System::kCerasure) <
                   g(28, 1024, System::kCerasure));
  return figure.run(argc, argv);
}
