// Figure 4: RS(12,8) 1 KB encode throughput across CPU frequencies, for
// PM vs DRAM and AVX512 vs AVX256.
//
// Paper shape: on PM, gains flatten beyond ~2 GHz (cycles are spent
// waiting on memory); DRAM keeps improving with frequency. The trend is
// more pronounced under AVX256.
#include <map>
#include <tuple>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.4  RS(12,8) 1KB encode vs CPU frequency",
      {"GHz", "source", "simd", "GB/s", "gain_vs_prev"});

  std::map<std::tuple<bool, int, int>, double> gbps;  // (pm, simd, dGHz)
  for (const bool pm : {true, false}) {
    for (const ec::SimdWidth simd :
         {ec::SimdWidth::kAvx512, ec::SimdWidth::kAvx256}) {
      double prev = 0.0;
      for (const double ghz : {1.2, 1.6, 2.0, 2.4, 2.8, 3.3}) {
        simmem::SimConfig cfg;
        cfg.cpu_freq_ghz = ghz;
        bench_util::WorkloadConfig wl;
        wl.k = 12;
        wl.m = 8;
        wl.block_size = 1024;
        wl.total_data_bytes = 16 * fig::kMiB;
        wl.data_kind = pm ? simmem::MemKind::kPm : simmem::MemKind::kDram;
        wl.parity_kind = wl.data_kind;
        const auto r = fig::RunEncodeSystem(fig::System::kIsal, cfg, wl, simd);
        gbps[{pm, static_cast<int>(simd), static_cast<int>(ghz * 10)}] =
            r.gbps;
        const std::string src = pm ? "PM" : "DRAM";
        figure.point(
            "fig4/" + src + "/" + ec::to_string(simd) + "/GHz:" +
                bench_util::Table::num(ghz, 1),
            {bench_util::Table::num(ghz, 1), src, ec::to_string(simd),
             bench_util::Table::num(r.gbps),
             prev > 0 ? bench_util::Table::pct(r.gbps / prev - 1.0) : "-"},
            r, {{"freq_ghz", ghz}});
        prev = r.gbps;
      }
    }
  }
  const auto g = [&](bool pm, ec::SimdWidth simd, double ghz) {
    return gbps[{pm, static_cast<int>(simd), static_cast<int>(ghz * 10)}];
  };
  const ec::SimdWidth w512 = ec::SimdWidth::kAvx512;
  const double pm_tail = g(true, w512, 3.3) / g(true, w512, 2.0) - 1.0;
  const double dram_tail = g(false, w512, 3.3) / g(false, w512, 2.0) - 1.0;
  figure.check("PM gains are minimal beyond 2 GHz (<10%)", pm_tail < 0.10);
  figure.check("DRAM keeps gaining more than PM past 2 GHz",
               dram_tail > 1.5 * pm_tail);
  const double pm256 =
      g(true, ec::SimdWidth::kAvx256, 3.3) /
      g(true, ec::SimdWidth::kAvx256, 1.2);
  const double pm512 = g(true, w512, 3.3) / g(true, w512, 1.2);
  figure.check("the trend is more pronounced under AVX256",
               pm256 > pm512);
  return figure.run(argc, argv);
}
