// Stripe-service load sweep: offered load vs completion latency.
//
// Each point runs a fresh svc::StripeService and P open-loop producers
// submitting RS(8,3)/1KB encode stripes at a fixed aggregate offered
// rate. The service batches admitted requests onto the work-stealing
// pool; admission control sheds load once the bounded queue saturates.
// The series reports, per offered-load level: achieved throughput,
// admitted/rejected split, p50/p99 service latency (submit ->
// completion), mean dispatched batch size, and the pool counters — the
// classic open-loop latency curve (flat until saturation, then the p99
// knee plus rejections instead of unbounded queueing).
//
// Machine-readable output: DIALGA_CSV_DIR drops the series as
// bench_svc_throughput.csv; every point is also a google-benchmark
// entry whose counters carry the same columns (JSON via
// --benchmark_format=json).
//
// --file-backed switches to the file datapath comparison instead: one
// encode_file + decode_file round trip per aio backend (stdio, and
// uring when the kernel has io_uring) over a 32 MiB input with the
// stripe service attached, checking the two backends produce
// bit-identical shards, manifest, and decoded output, and reporting
// throughput per backend. Series lands as
// bench_svc_throughput_datapath.csv under DIALGA_CSV_DIR.
//
// --cluster-nodes N switches to the cluster-tier sweep: healthy
// writes/reads, degraded reads with a node down, a scrub-repair pass
// and a remove-node rebalance against an in-process N-node cluster,
// reported as payload throughput per operation. Series lands as
// bench_svc_throughput_cluster.csv under DIALGA_CSV_DIR.
//
// --integrity measures what verify-on-read costs the decode path
// (checksum verification off vs on, best of three reps; target <= 5%
// overhead). Series lands as bench_svc_throughput_integrity.csv.
//
// --phase-shift runs the learned-selection acceptance measurement: a
// workload alternating two shapes (1-thread vs 16-thread encode of the
// same RS(12,4)/1KB stripes) over one persistent simulated memory
// system, three ways — hill-climb-only baseline, learned selector cold
// (empty plan cache), learned selector warm (plan cache populated by
// the cold run). Gates: the learned selector reaches within 5 % of each
// phase's steady-state throughput in <= 3 sampling windows once both
// shapes have been seen; the warm run replays the cached plans with 0
// fallback invocations; and two warm runs produce bit-identical
// decision streams. Series lands as
// bench_svc_throughput_selector.csv under DIALGA_CSV_DIR.
//
// --qos runs the bandwidth-governor acceptance measurement: a mixed
// workload (closed-loop bulk encodes saturating the pool + open-loop
// degraded reads) three ways — degraded-only baseline, ungoverned mix,
// governed mix — and checks the governed degraded-read p99 stays
// within 1.5x its bulk-free baseline while bulk throughput holds >=
// 80% of the ungoverned run. Series lands as
// bench_svc_throughput_qos.csv.
//
// Latency columns come in two flavors since the coordinated-omission
// fix: p50/p99 measure submit -> completion (service view), while
// p50i/p99i measure from the *intended* schedule-derived send time —
// when a producer falls behind its open-loop schedule, the time it
// spent blocked counts against the system, not the workload.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "aio/datapath.h"
#include "bench_util/stats.h"
#include "bench_util/workload.h"
#include "cluster/local_cluster.h"
#include "dialga/dialga.h"
#include "ec/executor.h"
#include "ec/isal.h"
#include "fault/injector.h"
#include "fig_common.h"
#include "obs/metrics.h"
#include "shard/shard_store.h"
#include "svc/governor.h"
#include "svc/stripe_service.h"

namespace {

struct PointResult {
  double seconds = 0.0;
  double achieved_kops = 0.0;
  svc::ServiceStats stats;
  /// Coordinated-omission-corrected percentiles: latency measured from
  /// each request's intended (schedule-derived) send time, so time a
  /// producer spent running behind its open-loop schedule counts.
  double p50_intended_s = 0.0;
  double p99_intended_s = 0.0;
  std::size_t intended_samples = 0;
};

/// One producer's pre-allocated stripes (buffers must outlive futures).
struct ProducerBuffers {
  std::vector<std::vector<std::byte>> blocks;
  std::size_t k, m, bs, n;

  ProducerBuffers(std::size_t stripes, std::size_t k_, std::size_t m_,
                  std::size_t bs_, unsigned seed)
      : blocks(stripes * (k_ + m_)), k(k_), m(m_), bs(bs_), n(stripes) {
    std::mt19937_64 rng(seed);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t i = 0; i < k + m; ++i) {
        auto& b = blocks[s * (k + m) + i];
        b.resize(bs);
        if (i < k) {
          for (auto& x : b) x = static_cast<std::byte>(rng());
        }
      }
    }
  }

  svc::EncodeRequest request(std::size_t s, const ec::Codec* codec) {
    svc::EncodeRequest req;
    req.shape = {k, m, bs};
    req.codec = codec;
    for (std::size_t i = 0; i < k; ++i) {
      req.data.push_back(blocks[s * (k + m) + i].data());
    }
    for (std::size_t j = 0; j < m; ++j) {
      req.parity.push_back(blocks[s * (k + m) + k + j].data());
    }
    return req;
  }
};

PointResult RunPoint(double offered_kops, std::size_t producers,
                     std::size_t per_producer, const ec::Codec& codec,
                     std::size_t k, std::size_t m, std::size_t bs) {
  svc::StripeService::Config cfg;
  cfg.queue_capacity = 512;
  svc::StripeService service(std::move(cfg));

  std::vector<std::unique_ptr<ProducerBuffers>> buffers;
  for (std::size_t p = 0; p < producers; ++p) {
    buffers.push_back(std::make_unique<ProducerBuffers>(
        per_producer, k, m, bs, static_cast<unsigned>(40 + p)));
  }

  // Open-loop pacing: each producer submits on a fixed-interval clock
  // regardless of completions. sleep_until rather than a deadline spin
  // so the producers do not steal cycles from the pool workers on
  // small machines; at the highest rates the sleep returns immediately
  // and pacing degrades to submit-as-fast-as-possible, which is the
  // overload the sweep wants anyway.
  const double per_producer_rate = offered_kops * 1e3 / producers;
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / per_producer_rate));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<double>> corrected(producers);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    corrected[p].assign(per_producer, -1.0);
    threads.emplace_back([&, p] {
      std::vector<std::future<svc::Result>> done;
      // Lateness of each actual submit vs its intended schedule slot:
      // the coordinated-omission correction adds it back to the
      // measured service latency, so requests a stalled producer
      // couldn't even send still charge the system for the stall.
      std::vector<double> late(per_producer, 0.0);
      done.reserve(per_producer);
      auto next = std::chrono::steady_clock::now();
      for (std::size_t s = 0; s < per_producer; ++s) {
        std::this_thread::sleep_until(next);
        late[s] = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - next)
                      .count();
        next += interval;
        done.push_back(service.submit(buffers[p]->request(s, &codec)));
      }
      for (std::size_t s = 0; s < per_producer; ++s) {
        const svc::Result res = done[s].get();
        if (res.ok()) {
          corrected[p][s] = std::max(0.0, late[s]) + res.service_seconds;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  PointResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.stats = service.stats();
  r.achieved_kops =
      r.seconds > 0.0
          ? static_cast<double>(r.stats.completed_ok) / (r.seconds * 1e3)
          : 0.0;
  std::vector<double> all;
  for (const auto& v : corrected) {
    for (const double x : v) {
      if (x >= 0.0) all.push_back(x);
    }
  }
  if (!all.empty()) {
    r.p50_intended_s = bench_util::Percentile(all, 0.50);
    r.p99_intended_s = bench_util::Percentile(all, 0.99);
    r.intended_samples = all.size();
  }
  return r;
}

/// Slurp a file's bytes (plain read; comparison only).
std::vector<std::byte> Slurp(const std::filesystem::path& p) {
  std::vector<std::byte> out;
  aio::ReadFileFull(p, &out);
  return out;
}

/// Whole-directory byte comparison: same file set, same contents.
bool DirsIdentical(const std::filesystem::path& a,
                   const std::filesystem::path& b) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(a)) {
    names.push_back(e.path().filename().string());
  }
  std::size_t b_count = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(b)) ++b_count;
  if (b_count != names.size()) return false;
  for (const auto& n : names) {
    if (Slurp(a / n) != Slurp(b / n)) return false;
  }
  return true;
}

/// The --file-backed mode: stdio vs uring over the shard datapath.
int RunFileBacked() {
  namespace fs = std::filesystem;
  const std::size_t k = 8, m = 3, bs = 64 * 1024;
  const std::size_t input_bytes = 32ull << 20;
  const ec::IsalCodec codec(k, m);

  const fs::path root =
      fs::temp_directory_path() /
      ("dialga_bench_datapath_" + std::to_string(::getpid()));
  fs::create_directories(root);
  const fs::path input = root / "input.bin";
  {
    std::mt19937_64 rng(42);
    std::vector<std::byte> data(input_bytes);
    for (auto& x : data) x = static_cast<std::byte>(rng());
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  struct BackendRun {
    const char* name;
    aio::Mode mode;
    double encode_s = 0.0, decode_s = 0.0;
    bool ok = false;
  };
  std::vector<BackendRun> runs{{"stdio", aio::Mode::kStdio}};
  const bool have_uring =
      aio::SelectBackend(aio::Mode::kAuto) == aio::Backend::kUring;
  if (have_uring) runs.push_back({"uring", aio::Mode::kUring});

  bench_util::Table table({"backend", "op", "bytes", "seconds", "GBps"});
  for (auto& run : runs) {
    svc::StripeService service(svc::StripeService::Config{});
    shard::ShardStore store(codec, bs);
    store.use_service(&service);
    store.set_aio_mode(run.mode);
    const fs::path dir = root / (std::string("shards_") + run.name);
    const fs::path decoded = root / (std::string("out_") + run.name);

    auto t0 = std::chrono::steady_clock::now();
    const shard::Status enc = store.encode_file(input, dir);
    auto t1 = std::chrono::steady_clock::now();
    const shard::Status dec = store.decode_file(dir, decoded);
    auto t2 = std::chrono::steady_clock::now();
    run.encode_s = std::chrono::duration<double>(t1 - t0).count();
    run.decode_s = std::chrono::duration<double>(t2 - t1).count();
    run.ok = enc.ok() && dec.ok();
    if (!run.ok) {
      std::fprintf(stderr, "%s backend failed: %s\n", run.name,
                   (enc.ok() ? dec : enc).message().c_str());
    }
    for (const auto& [op, secs] : {std::pair{"encode", run.encode_s},
                                   std::pair{"decode", run.decode_s}}) {
      table.row({run.name, op, std::to_string(input_bytes),
                 bench_util::Table::num(secs, 6),
                 bench_util::Table::num(
                     secs > 0 ? input_bytes / (secs * 1e9) : 0.0, 3)});
    }
  }

  const auto original = Slurp(input);
  bool outputs_match = true;
  bool shards_match = true;
  for (const auto& run : runs) {
    outputs_match &=
        run.ok && Slurp(root / (std::string("out_") + run.name)) == original;
  }
  if (runs.size() == 2 && runs[0].ok && runs[1].ok) {
    shards_match = DirsIdentical(root / "shards_stdio", root / "shards_uring");
  }

  std::printf("\n=== File-backed shard datapath: RS(%zu,%zu), %zu B blocks, "
              "%zu MiB input ===\n",
              k, m, bs, input_bytes >> 20);
  table.print(std::cout);
  std::printf("\npaper-shape checks:\n");
  bool all = true;
  auto check = [&](const char* claim, bool holds) {
    std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim);
    all &= holds;
  };
  bool every_ok = true;
  for (const auto& run : runs) every_ok &= run.ok;
  check("every backend round-trips without error", every_ok);
  check("decoded outputs are bit-identical to the input", outputs_match);
  if (runs.size() == 2) {
    check("stdio and uring emit bit-identical shards and manifest",
          shards_match);
    const double ratio =
        runs[1].encode_s > 0 ? runs[0].encode_s / runs[1].encode_s : 0.0;
    std::printf("  uring/stdio encode speedup: %.2fx\n", ratio);
  } else {
    std::printf("  (io_uring unavailable: stdio only, no comparison)\n");
  }

  if (const char* dir = std::getenv("DIALGA_CSV_DIR"); dir != nullptr) {
    std::ofstream out(std::string(dir) + "/bench_svc_throughput_datapath.csv");
    if (out) table.print_csv(out);
  }
  std::error_code ec;
  fs::remove_all(root, ec);
  return all ? 0 : 1;
}

/// The --integrity mode: what verify-on-read costs on the decode path.
/// One shard generation, decoded with checksum verification off and
/// then on (best of three reps each, so a scheduler hiccup cannot fake
/// a regression); the overhead target from the integrity work is <= 5%
/// — CRC-32C runs an order of magnitude faster than the decode itself,
/// so verification should be noise. Series lands as
/// bench_svc_throughput_integrity.csv under DIALGA_CSV_DIR.
int RunIntegrity() {
  namespace fs = std::filesystem;
  const std::size_t k = 8, m = 3, bs = 64 * 1024;
  const std::size_t input_bytes = 32ull << 20;
  const int reps = 3;
  const ec::IsalCodec codec(k, m);

  const fs::path root =
      fs::temp_directory_path() /
      ("dialga_bench_integrity_" + std::to_string(::getpid()));
  fs::create_directories(root);
  const fs::path input = root / "input.bin";
  {
    std::mt19937_64 rng(42);
    std::vector<std::byte> data(input_bytes);
    for (auto& x : data) x = static_cast<std::byte>(rng());
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  shard::ShardStore store(codec, bs);
  const fs::path dir = root / "shards";
  const bool encoded = store.encode_file(input, dir).ok();
  const auto original = Slurp(input);

  bench_util::Table table({"verify", "op", "bytes", "seconds", "GBps"});
  double best[2] = {0.0, 0.0};  // [0]=off, [1]=on
  bool ok[2] = {encoded, encoded};
  for (int v = 0; v < 2 && encoded; ++v) {
    store.set_verify_on_read(v == 1);
    for (int rep = 0; rep < reps; ++rep) {
      const fs::path decoded =
          root / ("out_" + std::to_string(v) + "_" + std::to_string(rep));
      const auto t0 = std::chrono::steady_clock::now();
      const shard::Status dec = store.decode_file(dir, decoded);
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      ok[v] &= dec.ok() && Slurp(decoded) == original;
      if (rep == 0 || secs < best[v]) best[v] = secs;
    }
    table.row({v == 1 ? "on" : "off", "decode", std::to_string(input_bytes),
               bench_util::Table::num(best[v], 6),
               bench_util::Table::num(
                   best[v] > 0 ? input_bytes / (best[v] * 1e9) : 0.0, 3)});
  }
  const double overhead =
      best[0] > 0.0 ? (best[1] - best[0]) / best[0] : 1.0;

  std::printf("\n=== Verify-on-read overhead: RS(%zu,%zu), %zu B blocks, "
              "%zu MiB input, best of %d ===\n",
              k, m, bs, input_bytes >> 20, reps);
  table.print(std::cout);
  std::printf("\npaper-shape checks:\n");
  bool all = true;
  auto check = [&](const char* claim, bool holds) {
    std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim);
    all &= holds;
  };
  check("decode round-trips bit-identically with verification off", ok[0]);
  check("decode round-trips bit-identically with verification on", ok[1]);
  std::printf("  verify-on-read decode overhead: %+.1f%%\n", overhead * 100);
  check("verify-on-read decode overhead stays within 5%", overhead <= 0.05);

  if (const char* csv = std::getenv("DIALGA_CSV_DIR"); csv != nullptr) {
    std::ofstream out(std::string(csv) +
                      "/bench_svc_throughput_integrity.csv");
    if (out) table.print_csv(out);
  }
  std::error_code ec;
  fs::remove_all(root, ec);
  return all ? 0 : 1;
}

/// The --cluster-nodes N mode: operation sweep over the in-process
/// cluster tier — healthy writes and reads, degraded reads with a node
/// down, a scrub-repair pass over dropped chunks, and a remove-node
/// rebalance — each reported as payload throughput. Series lands as
/// bench_svc_throughput_cluster.csv under DIALGA_CSV_DIR.
int RunCluster(std::size_t nodes) {
  const std::size_t stripes = 48;
  cluster::Geometry geom;
  geom.k = 4;
  geom.global = 2;
  geom.local = 0;
  geom.block_size = 64 * 1024;

  cluster::LocalClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.geom = geom;
  cluster::LocalCluster c(std::move(cfg));
  cluster::Coordinator& coord = c.coordinator();

  std::mt19937_64 rng(7);
  std::vector<std::vector<std::byte>> data(stripes * geom.k);
  for (auto& b : data) {
    b.resize(geom.block_size);
    for (auto& x : b) x = static_cast<std::byte>(rng());
  }
  const std::uint64_t payload =
      static_cast<std::uint64_t>(stripes) * geom.k * geom.block_size;

  bench_util::Table table({"op", "stripes", "bytes", "seconds", "GBps"});
  auto timed = [&](const char* op, std::uint64_t bytes, auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = body();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    table.row({op, std::to_string(stripes), std::to_string(bytes),
               bench_util::Table::num(secs, 6),
               bench_util::Table::num(
                   secs > 0 ? bytes / (secs * 1e9) : 0.0, 3)});
    return ok;
  };

  const bool writes_acked = timed("write", payload, [&] {
    bool ok = true;
    for (std::size_t s = 0; s < stripes; ++s) {
      std::vector<const std::byte*> blocks;
      for (std::size_t i = 0; i < geom.k; ++i) {
        blocks.push_back(data[s * geom.k + i].data());
      }
      ok &= coord.write_stripe(s, blocks).code ==
            cluster::OpResult::Code::kOk;
    }
    return ok;
  });

  auto read_all = [&](bool* identical) {
    bool ok = true;
    *identical = true;
    std::vector<std::vector<std::byte>> out(geom.k);
    for (auto& b : out) b.resize(geom.block_size);
    for (std::size_t s = 0; s < stripes; ++s) {
      std::vector<std::byte*> ptrs;
      for (auto& b : out) ptrs.push_back(b.data());
      ok &= coord.read_stripe(s, ptrs).ok();
      for (std::size_t i = 0; i < geom.k; ++i) {
        *identical &= out[i] == data[s * geom.k + i];
      }
    }
    return ok;
  };

  bool healthy_identical = false;
  const bool healthy_ok =
      timed("read", payload, [&] { return read_all(&healthy_identical); });

  c.kill(0);
  bool degraded_identical = false;
  const bool degraded_ok = timed("degraded_read", payload, [&] {
    return read_all(&degraded_identical);
  });
  c.revive(0);

  // Damage: drop the first data chunk of every stripe at its home, then
  // let one scrub pass put them all back.
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < stripes; ++s) {
    const auto t = c.placement().table(s, geom);
    if (c.node(t[0] - 1).drop_chunk(s, 0)) ++dropped;
  }
  cluster::ScrubReport scrub;
  const bool scrub_ok =
      timed("scrub_repair",
            static_cast<std::uint64_t>(dropped) * geom.block_size,
            [&] {
              scrub = coord.scrub_pass();
              return scrub.repaired == dropped && scrub.unrecoverable == 0;
            });

  cluster::RebalanceReport rebal;
  const bool rebal_ok = timed("rebalance", payload, [&] {
    rebal = coord.remove_node(cluster::LocalCluster::id_of(nodes - 1));
    return rebal.failed == 0;
  });

  std::printf("\n=== Cluster tier: %zu nodes, RS(%u,%u), %u B blocks, "
              "%zu stripes ===\n",
              nodes, geom.k, geom.global, geom.block_size, stripes);
  table.print(std::cout);
  std::printf("\npaper-shape checks:\n");
  bool all = true;
  auto check = [&](const char* claim, bool holds) {
    std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim);
    all &= holds;
  };
  check("every write is acknowledged (all chunks homed)", writes_acked);
  check("healthy reads return bit-identical data",
        healthy_ok && healthy_identical);
  check("degraded reads with a node down stay bit-identical",
        degraded_ok && degraded_identical);
  check("one scrub pass repairs every dropped chunk", scrub_ok);
  check("remove-node rebalance re-homes chunks without failures",
        rebal_ok && rebal.moved + rebal.rebuilt > 0);

  if (const char* dir = std::getenv("DIALGA_CSV_DIR"); dir != nullptr) {
    std::ofstream out(std::string(dir) + "/bench_svc_throughput_cluster.csv");
    if (out) table.print_csv(out);
  }
  return all ? 0 : 1;
}

/// One mixed-workload run for the --qos mode: optional closed-loop
/// bulk encodes (saturating) against open-loop degraded reads, on one
/// service, optionally governed. Degraded-read latencies are reported
/// both raw (submit -> completion) and coordinated-omission-corrected
/// (intended send -> completion).
struct MixResult {
  double seconds = 0.0;
  std::uint64_t bulk_completed = 0;
  double bulk_stripes_per_s = 0.0;
  double deg_p50_s = 0.0, deg_p99_s = 0.0;    ///< actual-submit basis
  double deg_p50i_s = 0.0, deg_p99i_s = 0.0;  ///< intended-time basis
  std::size_t deg_served = 0;
  std::size_t deg_failed = 0;
  svc::GovernorStats gov;
};

MixResult RunMix(bool with_bulk, svc::BandwidthGovernor* governor,
                 double run_seconds, const ec::Codec& codec) {
  const std::size_t k = 8, m = 3;
  const std::size_t bulk_bs = 64 * 1024;
  const std::size_t deg_bs = 64 * 1024;
  const std::size_t bulk_producers = 2;
  const std::size_t bulk_window = 4;  ///< outstanding per producer
  const std::size_t deg_producers = 2;
  const double deg_rate_per_producer = 1000.0;  // ops/s each
  const std::size_t deg_ring = 128;  ///< reusable buffer slots each

  svc::StripeService::Config cfg;
  cfg.queue_capacity = 2048;
  // Single-stripe batches keep the pool's head-of-line blocking unit
  // at one stripe's encode time — the granularity the governor's
  // byte cap schedules at. Applied to every run so the comparison is
  // batching-neutral.
  cfg.max_batch = 1;
  cfg.governor = governor;
  // The governed run also gets the QoS dispatch path's side pool, so
  // degraded reads never queue behind already-dispatched bulk stripes.
  cfg.latency_pool_threads = governor != nullptr ? 1 : 0;
  svc::StripeService service(std::move(cfg));

  // All stripe buffers are built before the clock starts: filling tens
  // of MB from an RNG inside a producer thread would eat the deadline.
  const std::size_t bulk_slots = 2 * bulk_window;
  std::vector<std::unique_ptr<ProducerBuffers>> bulk_bufs;
  if (with_bulk) {
    for (std::size_t p = 0; p < bulk_producers; ++p) {
      bulk_bufs.push_back(std::make_unique<ProducerBuffers>(
          bulk_slots, k, m, bulk_bs, static_cast<unsigned>(90 + p)));
    }
  }
  // deg_ring reusable decode stripes per producer: blocks 0..k+m-1,
  // erasure {0}; filled by 64-bit words (contents only feed the GF
  // math, the pattern does not matter).
  std::vector<std::vector<std::vector<std::byte>>> deg_blocks(deg_producers);
  for (std::size_t p = 0; p < deg_producers; ++p) {
    std::mt19937_64 rng(700 + p);
    deg_blocks[p].resize(deg_ring * (k + m));
    for (auto& b : deg_blocks[p]) {
      b.resize(deg_bs);
      for (std::size_t off = 0; off + 8 <= deg_bs; off += 8) {
        const std::uint64_t v = rng();
        std::memcpy(b.data() + off, &v, sizeof(v));
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(run_seconds));

  std::vector<std::thread> threads;
  std::vector<std::uint64_t> bulk_done(bulk_producers, 0);
  if (with_bulk) {
    for (std::size_t p = 0; p < bulk_producers; ++p) {
      threads.emplace_back([&, p] {
        // Reusable stripe pool; slot reuse is safe because the window
        // is harvested before a slot comes around again.
        ProducerBuffers& bufs = *bulk_bufs[p];
        std::deque<std::future<svc::Result>> window;
        std::uint64_t submitted = 0;
        while (std::chrono::steady_clock::now() < deadline) {
          if (window.size() >= bulk_window) {
            if (window.front().get().ok()) ++bulk_done[p];
            window.pop_front();
          }
          svc::EncodeRequest req =
              bufs.request(submitted % bulk_slots, &codec);
          req.qos_class = svc::TrafficClass::kBulkEncode;
          window.push_back(service.submit(std::move(req)));
          ++submitted;
        }
        while (!window.empty()) {
          if (window.front().get().ok()) ++bulk_done[p];
          window.pop_front();
        }
      });
    }
  }

  std::vector<std::vector<double>> deg_corrected(deg_producers);
  std::vector<std::vector<double>> deg_raw(deg_producers);
  std::vector<std::size_t> deg_fail(deg_producers, 0);
  for (std::size_t p = 0; p < deg_producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<std::vector<std::byte>>& blocks = deg_blocks[p];
      std::vector<std::future<svc::Result>> slot_fut(deg_ring);
      std::vector<double> slot_late(deg_ring, 0.0);
      std::vector<bool> slot_used(deg_ring, false);
      const auto interval = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / deg_rate_per_producer));
      auto harvest = [&](std::size_t slot) {
        if (!slot_used[slot]) return;
        const svc::Result res = slot_fut[slot].get();
        if (res.ok()) {
          deg_raw[p].push_back(res.service_seconds);
          deg_corrected[p].push_back(std::max(0.0, slot_late[slot]) +
                                     res.service_seconds);
        } else {
          ++deg_fail[p];
        }
        slot_used[slot] = false;
      };
      auto next = std::chrono::steady_clock::now();
      std::size_t i = 0;
      while (next < deadline) {
        std::this_thread::sleep_until(next);
        const std::size_t slot = i % deg_ring;
        harvest(slot);  // bounds outstanding at deg_ring per producer
        const double late = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - next)
                                .count();
        next += interval;
        svc::DecodeRequest req;
        req.shape = {k, m, deg_bs};
        req.codec = &codec;
        for (std::size_t j = 0; j < k + m; ++j) {
          req.blocks.push_back(blocks[slot * (k + m) + j].data());
        }
        req.erasures = {0};
        slot_late[slot] = late;
        slot_fut[slot] = service.submit(std::move(req));
        slot_used[slot] = true;
        ++i;
      }
      for (std::size_t s = 0; s < deg_ring; ++s) harvest(s);
    });
  }
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  service.shutdown();

  MixResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const std::uint64_t d : bulk_done) r.bulk_completed += d;
  r.bulk_stripes_per_s =
      r.seconds > 0.0 ? static_cast<double>(r.bulk_completed) / r.seconds
                      : 0.0;
  std::vector<double> raw, corrected;
  for (std::size_t p = 0; p < deg_producers; ++p) {
    raw.insert(raw.end(), deg_raw[p].begin(), deg_raw[p].end());
    corrected.insert(corrected.end(), deg_corrected[p].begin(),
                     deg_corrected[p].end());
    r.deg_failed += deg_fail[p];
  }
  r.deg_served = corrected.size();
  if (!corrected.empty()) {
    r.deg_p50_s = bench_util::Percentile(raw, 0.50);
    r.deg_p99_s = bench_util::Percentile(raw, 0.99);
    r.deg_p50i_s = bench_util::Percentile(corrected, 0.50);
    r.deg_p99i_s = bench_util::Percentile(corrected, 0.99);
  }
  if (governor != nullptr) r.gov = governor->snapshot();
  return r;
}

/// The --qos mode: the governor acceptance measurement. The
/// baseline/ungoverned/governed triple is repeated kQosReps times
/// (interleaved, so a noisy-neighbour phase cannot hit only one run
/// type) and every check gates on the medians — a p99 on a small
/// shared machine is one scheduler stall away from garbage, a median
/// of three is not.
int RunQos(double run_seconds) {
  const ec::IsalCodec codec(8, 3);
  constexpr int kQosReps = 3;

  std::vector<MixResult> bases, raws, govs;
  for (int rep = 0; rep < kQosReps; ++rep) {
    // Baseline: degraded reads with no bulk at all — the latency the
    // shield is measured against.
    bases.push_back(RunMix(false, nullptr, run_seconds, codec));
    // Ungoverned mix: bulk free to starve the reads.
    raws.push_back(RunMix(true, nullptr, run_seconds, codec));
    // Governed mix.
    svc::GovernorConfig gc;
    // Three 64 KiB RS(8,3) stripes (704 KiB each) in flight: enough
    // pipeline for bulk to ride a full dispatcher wake cycle, small
    // enough that the backlog a degraded read shares the machine with
    // stays bounded (the side pool keeps it out of their queue).
    gc.bulk_inflight_cap = 2304ull << 10;
    gc.high_watermark_bytes = 64ull << 20;
    gc.low_watermark_bytes = 16ull << 20;
    // Adaptive latency budget: bulk drains while the degraded-read
    // EWMA stays within this ratio of the learned (decaying-minimum)
    // floor. The floor tracks the machine's current speed, so the
    // gate survives noisy neighbours where a fixed microsecond budget
    // would starve bulk outright.
    gc.degraded_headroom_ratio = 2.5;
    gc.max_defer_ns = 20'000'000;
    svc::BandwidthGovernor governor(gc);
    govs.push_back(RunMix(true, &governor, run_seconds, codec));
  }

  bench_util::Table table({"rep", "run", "bulk_stripes_s", "deg_served",
                           "deg_p50_us", "deg_p99_us", "deg_p50i_us",
                           "deg_p99i_us", "deferrals", "opportunistic",
                           "forced", "aged"});
  auto row = [&](int rep, const char* name, const MixResult& r,
                 bool governed) {
    table.row({std::to_string(rep), name,
               bench_util::Table::num(r.bulk_stripes_per_s, 1),
               std::to_string(r.deg_served),
               bench_util::Table::num(r.deg_p50_s * 1e6, 1),
               bench_util::Table::num(r.deg_p99_s * 1e6, 1),
               bench_util::Table::num(r.deg_p50i_s * 1e6, 1),
               bench_util::Table::num(r.deg_p99i_s * 1e6, 1),
               std::to_string(governed ? r.gov.deferrals : 0),
               std::to_string(governed ? r.gov.opportunistic_drains : 0),
               std::to_string(governed ? r.gov.forced_drains : 0),
               std::to_string(governed ? r.gov.aged_drains : 0)});
  };
  for (int rep = 0; rep < kQosReps; ++rep) {
    row(rep, "baseline", bases[rep], false);
    row(rep, "ungoverned", raws[rep], false);
    row(rep, "governed", govs[rep], true);
  }

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  auto collect = [&](const std::vector<MixResult>& runs, auto proj) {
    std::vector<double> v;
    for (const MixResult& r : runs) v.push_back(proj(r));
    return v;
  };
  auto p99i = [](const MixResult& r) { return r.deg_p99i_s; };
  auto bulk = [](const MixResult& r) { return r.bulk_stripes_per_s; };
  const double base_p99i = median(collect(bases, p99i));
  const double raw_p99i = median(collect(raws, p99i));
  const double gov_p99i = median(collect(govs, p99i));
  const double raw_bulk = median(collect(raws, bulk));
  const double gov_bulk = median(collect(govs, bulk));

  std::printf("\n=== Bandwidth QoS: bulk RS(8,3)x64KiB closed-loop vs "
              "degraded reads RS(8,3)x64KiB @ 2 kops, median of %d ===\n",
              kQosReps);
  table.print(std::cout);
  std::printf("\npaper-shape checks (medians):\n");
  bool all = true;
  auto check = [&](const char* claim, bool holds) {
    std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim);
    all &= holds;
  };
  bool served = true, ran_bulk = true;
  for (int rep = 0; rep < kQosReps; ++rep) {
    served &= bases[rep].deg_served > 0 && raws[rep].deg_served > 0 &&
              govs[rep].deg_served > 0;
    ran_bulk &= raws[rep].bulk_completed > 0 && govs[rep].bulk_completed > 0;
  }
  check("every run served degraded reads", served);
  check("bulk ran in every mixed run", ran_bulk);
  const double shield = base_p99i > 0.0 ? gov_p99i / base_p99i : 0.0;
  std::printf("  governed p99i / bulk-free p99i: %.2fx "
              "(ungoverned: %.2fx)\n",
              shield, base_p99i > 0.0 ? raw_p99i / base_p99i : 0.0);
  check("governed degraded-read p99 (CO-corrected) stays within 1.5x "
        "its bulk-free baseline",
        shield > 0.0 && shield <= 1.5);
  const double kept = raw_bulk > 0.0 ? gov_bulk / raw_bulk : 0.0;
  std::printf("  governed bulk throughput vs ungoverned: %.0f%%\n",
              kept * 100);
  check("governed bulk throughput holds >= 80% of the ungoverned run",
        kept >= 0.80);

  if (const char* dir = std::getenv("DIALGA_CSV_DIR"); dir != nullptr) {
    std::ofstream out(std::string(dir) + "/bench_svc_throughput_qos.csv");
    if (out) table.print_csv(out);
  }
  return all ? 0 : 1;
}

// --------------------------------------------------------------------
// --phase-shift: learned-selection acceptance (ROADMAP item 1).

/// One phase's outcome under one selection mode.
struct PhaseOutcome {
  std::size_t nthreads = 0;
  std::size_t windows = 0;      ///< sampling windows inside the phase
  std::size_t to_95 = 0;        ///< windows until >= 95 % of steady state
  double steady_gbps = 0.0;     ///< median of the phase's last half
  std::size_t cache_hits = 0;   ///< windows decided by the plan cache
  std::size_t predicted = 0;    ///< windows decided by the predictor
};

struct ShiftRun {
  std::vector<PhaseOutcome> phases;
  std::vector<std::pair<std::uint64_t, int>> decisions;  ///< replay stream
  std::uint64_t fallbacks = 0;  ///< selector fallback windows (whole run)
};

/// Drive kShiftPhases alternating workload phases through one adaptive
/// provider over one persistent memory system, so the coordinator's
/// sampling state carries across the shifts exactly as it would in a
/// long-lived service process.
constexpr std::size_t kShiftK = 12, kShiftM = 4, kShiftBlock = 1024;
constexpr int kShiftPhases = 8;
constexpr std::size_t kShiftMaxThreads = 16;

ShiftRun RunShiftWorkload(const dialga::SelectorOptions& sel) {
  const simmem::SimConfig sim;
  dialga::Thresholds thr;
  // Densest practical sampling: the recovery gate counts windows, so
  // the windows must be small enough that "<= 3 windows" is a real
  // constraint inside a phase.
  thr.sample_interval_ns = 2.0e5;
  dialga::DialgaCodec codec(kShiftK, kShiftM, ec::SimdWidth::kAvx512,
                            dialga::Features::all(), thr);
  codec.set_selector_options(sel);
  const dialga::PatternInfo pattern{kShiftK, kShiftM, kShiftBlock, 1};
  auto provider = codec.make_encode_provider(pattern, sim);
  provider->coordinator().set_record_windows(true);

  simmem::MemorySystem mem(sim, kShiftMaxThreads);
  std::vector<std::size_t> phase_start;
  std::vector<std::size_t> phase_threads;
  for (int p = 0; p < kShiftPhases; ++p) {
    const std::size_t nthreads = p % 2 == 0 ? 1 : kShiftMaxThreads;
    provider->observe_pattern({kShiftK, kShiftM, kShiftBlock, nthreads});
    phase_start.push_back(provider->coordinator().windows().size());
    phase_threads.push_back(nthreads);

    bench_util::WorkloadConfig wc;
    wc.k = kShiftK;
    wc.m = kShiftM;
    wc.block_size = kShiftBlock;
    wc.threads = nthreads;
    // Sized for a healthy number of sampling windows per phase at the
    // interval above (tuned once; deterministic thereafter).
    wc.total_data_bytes = nthreads == 1 ? (3ull << 20) : (24ull << 20);
    wc.seed = 100 + static_cast<std::uint64_t>(p);
    bench_util::Workload wl = bench_util::BuildWorkload(wc);
    for (ec::ThreadWork& w : wl.work) w.provider = provider.get();
    ec::RunThreads(mem, wl.work);
    // Bring every core to the same clock before the next phase: a
    // 1-thread phase leaves core 0 far ahead, and the next 16-thread
    // phase would otherwise interleave "in the past".
    const double clock = mem.max_clock();
    for (std::size_t t = 0; t < kShiftMaxThreads; ++t) {
      mem.advance_to(t, clock);
    }
  }

  ShiftRun run;
  const auto& windows = provider->coordinator().windows();
  if (std::getenv("DIALGA_SHIFT_DEBUG") != nullptr) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      int phase = -1;
      for (std::size_t p = 0; p < phase_start.size(); ++p) {
        if (i >= phase_start[p]) phase = static_cast<int>(p);
      }
      std::printf("dbg phase=%d w=%zu gbps=%.3f key=%llu src=%d\n", phase, i,
                  windows[i].gbps,
                  static_cast<unsigned long long>(windows[i].strategy_key),
                  static_cast<int>(windows[i].source));
    }
  }
  for (int p = 0; p < kShiftPhases; ++p) {
    const std::size_t lo = phase_start[static_cast<std::size_t>(p)];
    const std::size_t hi = p + 1 < kShiftPhases
                               ? phase_start[static_cast<std::size_t>(p) + 1]
                               : windows.size();
    PhaseOutcome out;
    out.nthreads = phase_threads[static_cast<std::size_t>(p)];
    out.windows = hi - lo;
    if (out.windows == 0) {
      run.phases.push_back(out);
      continue;
    }
    // Steady state: median throughput of the phase's second half.
    std::vector<double> tail;
    for (std::size_t i = lo + out.windows / 2; i < hi; ++i) {
      tail.push_back(windows[i].gbps);
    }
    std::sort(tail.begin(), tail.end());
    out.steady_gbps = tail.empty() ? 0.0 : tail[tail.size() / 2];
    out.to_95 = out.windows;  // "never" until proven otherwise
    for (std::size_t i = lo; i < hi; ++i) {
      if (windows[i].gbps >= 0.95 * out.steady_gbps) {
        out.to_95 = i - lo;
        break;
      }
    }
    for (std::size_t i = lo; i < hi; ++i) {
      if (windows[i].source == dialga::DecisionSource::kCacheHit) {
        ++out.cache_hits;
      } else if (windows[i].source == dialga::DecisionSource::kPredicted) {
        ++out.predicted;
      }
    }
    run.phases.push_back(out);
  }
  for (const dialga::WindowRecord& w : windows) {
    run.decisions.emplace_back(w.strategy_key, static_cast<int>(w.source));
  }
  if (const dialga::StrategySelector* s = provider->coordinator().selector()) {
    run.fallbacks = s->stats().fallbacks;
  }
  return run;
}

int RunPhaseShift() {
  const std::string cache_path =
      (std::filesystem::temp_directory_path() / "bench_phase_shift_plans.bin")
          .string();
  std::remove(cache_path.c_str());

  // Hill-climb-only baseline: selector disabled.
  const ShiftRun baseline = RunShiftWorkload(dialga::SelectorOptions{});

  // Learned, cold: empty plan cache, full exploration allowed. Its
  // graceful-shutdown flush (provider teardown) populates the cache.
  dialga::SelectorOptions cold;
  cold.enabled = true;
  cold.seed = 1;
  cold.plan_cache_path = cache_path;
  const ShiftRun learned = RunShiftWorkload(cold);

  // Learned, warm: replay against the populated cache, learning
  // frozen — run twice for the bit-replay check.
  dialga::SelectorOptions warm = cold;
  warm.learn = false;
  const std::uint64_t fallbacks_before =
      obs::Registry::Global()
          .counter("dialga_selector_fallbacks_total", {}, "")
          .value();
  const ShiftRun warm1 = RunShiftWorkload(warm);
  const std::uint64_t fallbacks_after =
      obs::Registry::Global()
          .counter("dialga_selector_fallbacks_total", {}, "")
          .value();
  const ShiftRun warm2 = RunShiftWorkload(warm);

  bench_util::Table table({"mode", "phase", "threads", "windows", "to_95",
                           "steady_gbps", "cache_hits", "predicted",
                           "fallbacks"});
  const auto rows = [&table](const char* mode, const ShiftRun& r) {
    for (std::size_t p = 0; p < r.phases.size(); ++p) {
      const PhaseOutcome& o = r.phases[p];
      table.row({mode, std::to_string(p), std::to_string(o.nthreads),
                 std::to_string(o.windows), std::to_string(o.to_95),
                 bench_util::Table::num(o.steady_gbps, 3),
                 std::to_string(o.cache_hits), std::to_string(o.predicted),
                 std::to_string(r.fallbacks)});
    }
  };
  rows("hill_climb", baseline);
  rows("learned_cold", learned);
  rows("learned_warm", warm1);

  std::printf("\n=== Learned selection: RS(%zu,%zu)/%zu B phase shift "
              "(1 <-> %zu threads, %d phases) ===\n",
              kShiftK, kShiftM, kShiftBlock, kShiftMaxThreads, kShiftPhases);
  table.print(std::cout);

  std::printf("\nacceptance checks:\n");
  bool all = true;
  auto check = [&](const char* claim, bool holds) {
    std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim);
    all &= holds;
  };

  bool enough_windows = true;
  for (const PhaseOutcome& o : learned.phases) {
    enough_windows &= o.windows >= 6;
  }
  check("every phase spans >= 6 sampling windows", enough_windows);

  // Cold learned run: once both shapes have been seen (phases 2+), a
  // shift recovers to within 5 % of steady state in <= 3 windows.
  bool cold_recovers = true;
  for (std::size_t p = 2; p < learned.phases.size(); ++p) {
    cold_recovers &= learned.phases[p].to_95 <= 3;
  }
  check("learned (cold cache): within 5 % of steady state in <= 3 windows "
        "after every shift past the first cycle",
        cold_recovers);

  bool warm_recovers = true;
  for (const PhaseOutcome& o : warm1.phases) {
    warm_recovers &= o.to_95 <= 3;
  }
  check("learned (warm cache): within 5 % of steady state in <= 3 windows "
        "after every shift",
        warm_recovers);

  check("warm run records dialga_selector_fallbacks_total == 0 "
        "(plan cache skips exploration entirely)",
        warm1.fallbacks == 0 && fallbacks_after == fallbacks_before);

  check("warm decision stream is bit-replayable (two runs identical)",
        !warm1.decisions.empty() && warm1.decisions == warm2.decisions);

  // A committed plan must not be a regression: cached replay has to
  // hold the throughput the explorer's steady state reached.
  bool no_regression = baseline.phases.size() == warm1.phases.size();
  for (std::size_t p = 0; no_regression && p < warm1.phases.size(); ++p) {
    no_regression &=
        warm1.phases[p].steady_gbps >= 0.9 * baseline.phases[p].steady_gbps;
  }
  check("warm steady state holds >= 90 % of the hill-climb baseline in "
        "every phase",
        no_regression);

  bool warm_all_cached = true;
  for (const PhaseOutcome& o : warm1.phases) {
    warm_all_cached &= o.cache_hits == o.windows;
  }
  check("every warm window was decided by the plan cache", warm_all_cached);

  if (const char* dir = std::getenv("DIALGA_CSV_DIR"); dir != nullptr) {
    std::ofstream out(std::string(dir) +
                      "/bench_svc_throughput_selector.csv");
    if (out) table.print_csv(out);
  }
  std::remove(cache_path.c_str());
  return all ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // DIALGA_FAULT_PLAN / DIALGA_FAULT_SEED turn this bench into a
  // degraded-mode throughput measurement (rejections/deadlines under a
  // deterministic fault schedule); unset, the checks below expect the
  // clean curve.
  std::string plan_error;
  if (!fault::Injector::Global().install_from_env(&plan_error)) {
    std::fprintf(stderr, "bad DIALGA_FAULT_PLAN: %s\n", plan_error.c_str());
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--file-backed") == 0) return RunFileBacked();
    if (std::strcmp(argv[i], "--integrity") == 0) return RunIntegrity();
    if (std::strcmp(argv[i], "--phase-shift") == 0) return RunPhaseShift();
    if (std::strcmp(argv[i], "--qos") == 0) {
      double secs = 1.5;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        secs = std::strtod(argv[i + 1], nullptr);
        if (secs <= 0.0) {
          std::fprintf(stderr, "--qos wants a positive run-seconds\n");
          return 2;
        }
      }
      return RunQos(secs);
    }
    if (std::strcmp(argv[i], "--cluster-nodes") == 0 && i + 1 < argc) {
      const std::size_t n = std::strtoull(argv[i + 1], nullptr, 10);
      if (n == 0) {
        std::fprintf(stderr, "--cluster-nodes wants a positive count\n");
        return 2;
      }
      return RunCluster(n);
    }
  }
  const std::size_t k = 8, m = 3, bs = 1024;
  const std::size_t producers = 4;
  const std::size_t per_producer = 400;
  const ec::IsalCodec codec(k, m);

  fig::FigureBench figure(
      "Stripe service: offered load vs completion latency, RS(8,3) 1KB "
      "encode",
      {"offered_kops", "achieved_kops", "admitted", "rejected", "p50_us",
       "p99_us", "p50i_us", "p99i_us", "mean_batch", "pool_tasks",
       "pool_steals", "pool_max_queue"});

  std::uint64_t low_load_rejected = 0;
  std::uint64_t overload_rejected = 0;
  bool every_point_completed = true;
  for (const double offered : {5.0, 20.0, 80.0, 320.0, 1280.0}) {
    const PointResult r =
        RunPoint(offered, producers, per_producer, codec, k, m, bs);
    const svc::ServiceStats& st = r.stats;
    const std::uint64_t rejected =
        st.rejected_queue_full + st.rejected_class_limit;
    every_point_completed &= st.completed_ok > 0;
    if (offered == 5.0) low_load_rejected = rejected;
    if (offered == 1280.0) overload_rejected = rejected;

    bench_util::RunResult as_run;
    as_run.sim_seconds = r.seconds;
    as_run.payload_bytes = st.completed_ok * k * bs;
    as_run.gbps = r.seconds > 0.0
                      ? static_cast<double>(as_run.payload_bytes) /
                            (r.seconds * 1e9)
                      : 0.0;
    figure.point(
        "svc/offered_kops:" + std::to_string(static_cast<int>(offered)),
        {bench_util::Table::num(offered, 0),
         bench_util::Table::num(r.achieved_kops, 1),
         std::to_string(st.admitted), std::to_string(rejected),
         bench_util::Table::num(st.latency_p50_s * 1e6, 1),
         bench_util::Table::num(st.latency_p99_s * 1e6, 1),
         bench_util::Table::num(r.p50_intended_s * 1e6, 1),
         bench_util::Table::num(r.p99_intended_s * 1e6, 1),
         bench_util::Table::num(st.mean_batch_stripes(), 2),
         std::to_string(st.pool.tasks_run), std::to_string(st.pool.steals),
         std::to_string(st.pool.max_queue_depth)},
        as_run,
        {{"offered_kops", offered},
         {"achieved_kops", r.achieved_kops},
         {"admitted", static_cast<double>(st.admitted)},
         {"rejected", static_cast<double>(rejected)},
         {"p50_us", st.latency_p50_s * 1e6},
         {"p99_us", st.latency_p99_s * 1e6},
         {"p50i_us", r.p50_intended_s * 1e6},
         {"p99i_us", r.p99_intended_s * 1e6},
         {"mean_batch", st.mean_batch_stripes()},
         {"queue_high_water", static_cast<double>(st.queue_high_water)},
         {"pool_tasks", static_cast<double>(st.pool.tasks_run)},
         {"pool_steals", static_cast<double>(st.pool.steals)},
         {"pool_max_queue",
          static_cast<double>(st.pool.max_queue_depth)}});
  }

  figure.check("every point keeps a nonzero completion count",
               every_point_completed);
  figure.check("admission control stays quiet at the lightest load",
               low_load_rejected == 0);
  // The load-shedding contract: past saturation the service rejects
  // rather than queueing without bound (which is why completed-request
  // latency stays capped instead of growing with offered load).
  figure.check("overload is shed through rejections, not queueing",
               overload_rejected > 0);
  return figure.run(argc, argv);
}
