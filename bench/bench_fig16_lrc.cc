// Figure 16: LRC(k, m, l) encode throughput (1 KB blocks, PM).
//
// Paper shape: the extra local-parity computation and stores cost all
// systems some throughput vs plain RS; DIALGA improves on the best
// alternative by 24.3-32.7 % on non-wide and 35.2-37.8 % on wide
// stripes (the higher store fraction caps its benefit below the RS
// case).
#include <numeric>

#include "fig_common.h"

namespace {

bench_util::RunResult RunLrc(bool dialga_prefetch, std::size_t k,
                             std::size_t m, std::size_t l,
                             const simmem::SimConfig& cfg,
                             bench_util::WorkloadConfig wl) {
  const ec::LrcCodec codec(k, m, l);
  wl.m = m;
  wl.extra_parity = l;
  if (!dialga_prefetch) {
    ec::FixedPlanProvider provider(codec.encode_plan(wl.block_size, cfg.cost));
    return bench_util::RunTimed(cfg, wl, provider);
  }
  // DIALGA applied to LRC: same adaptive scheduling, LRC plan factory
  // (section 4.1 "Other Coding Tasks").
  const dialga::Thresholds thresholds;
  const dialga::PatternInfo pattern{k, m + l, wl.block_size, wl.threads};
  dialga::DialgaPlanProvider provider(
      [&codec, &cfg, &wl](const ec::IsalPlanOptions& opts) {
        // Re-shape the LRC row plan with DIALGA's options.
        std::vector<std::size_t> sources(codec.params().k);
        std::iota(sources.begin(), sources.end(), 0);
        std::vector<std::size_t> targets(codec.params().m);
        std::iota(targets.begin(), targets.end(), codec.params().k);
        const double per_parity = cfg.cost.avx512_cycles_per_line_parity;
        const double cycles =
            cfg.cost.per_line_overhead_cycles +
            static_cast<double>(codec.global_parities()) * per_parity +
            cfg.cost.xor_cycles_per_line;
        return ec::BuildRowPlan(wl.block_size, sources, targets,
                                codec.params().k, codec.params().m, cycles,
                                opts);
      },
      pattern, dialga::Features::all(), thresholds,
      cfg.pm_read_buffer_total());
  return bench_util::RunTimed(cfg, wl, provider);
}

}  // namespace

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.16  LRC(k,m,l) encode throughput (1KB blocks, PM)",
      {"k", "m", "l", "ISA-L(LRC)", "DIALGA(LRC)", "gain"});

  struct Shape {
    std::size_t k, m, l;
  };
  const Shape shapes[] = {{12, 2, 2}, {12, 4, 2}, {24, 4, 2}, {48, 4, 4},
                          {52, 4, 4}};
  bool dialga_wins_all = true;
  for (const Shape& sh : shapes) {
    simmem::SimConfig cfg;
    bench_util::WorkloadConfig wl;
    wl.k = sh.k;
    wl.block_size = 1024;
    wl.total_data_bytes = 16 * fig::kMiB;

    const auto base = RunLrc(false, sh.k, sh.m, sh.l, cfg, wl);
    const auto ours = RunLrc(true, sh.k, sh.m, sh.l, cfg, wl);
    const std::string label = "LRC(" + std::to_string(sh.k) + "," +
                              std::to_string(sh.m) + "," +
                              std::to_string(sh.l) + ")";
    dialga_wins_all = dialga_wins_all && ours.gbps > base.gbps;
    figure.point("fig16/" + label + "/ISA-L",
                 {std::to_string(sh.k), std::to_string(sh.m),
                  std::to_string(sh.l), bench_util::Table::num(base.gbps),
                  bench_util::Table::num(ours.gbps),
                  bench_util::Table::pct(ours.gbps / base.gbps - 1.0)},
                 base);
    fig::RegisterPoint("fig16/" + label + "/DIALGA", [ours] {
      return std::pair{ours, std::map<std::string, double>{}};
    });
  }
  figure.check("DIALGA improves LRC encoding at every shape",
               dialga_wins_all);
  return figure.run(argc, argv);
}
