// Figure 6: RS(28,24) encode throughput and PM media read amplification
// across block sizes, HW prefetcher off/on.
//
// Paper shape: no prefetch effect (and no amplification) at 256/512 B;
// 1-3 KB gains come with 23-37 % read amplification from end-of-block
// overshoot; 4 KB is ideal (page-boundary clipping: full gain, no
// amplification); 5 KB shows mixed behaviour.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.6  RS(28,24) block-size sweep on PM: throughput + media "
      "amplification",
      {"block_B", "hw_pf", "GB/s", "media_amp", "pf_gain"});

  std::map<std::size_t, double> gain, amp, on_gbps;
  for (const std::size_t bs :
       {256u, 512u, 1024u, 2048u, 3072u, 4096u, 5120u}) {
    double off_gbps = 0.0;
    for (const bool pf : {false, true}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = 28;
      wl.m = 24;
      wl.block_size = bs;
      wl.total_data_bytes = 32 * fig::kMiB;
      const auto r = fig::RunEncodeSystem(fig::System::kIsal, cfg, wl,
                                          ec::SimdWidth::kAvx512, pf);
      if (!pf) off_gbps = r.gbps;
      if (pf) {
        gain[bs] = r.gbps / off_gbps - 1.0;
        amp[bs] = r.media_amplification();
        on_gbps[bs] = r.gbps;
      }
      figure.point(
          "fig6/bs:" + std::to_string(bs) + (pf ? "/pf_on" : "/pf_off"),
          {std::to_string(bs), pf ? "on" : "off",
           bench_util::Table::num(r.gbps),
           bench_util::Table::num(r.media_amplification()),
           pf ? bench_util::Table::pct(r.gbps / off_gbps - 1.0) : "-"},
          r, {{"media_amp", r.media_amplification()}});
    }
  }
  figure.check("no prefetch effect at 256/512 B",
               gain[256] < 0.05 && gain[512] < 0.05);
  figure.check("no amplification at 256/512 B",
               amp[256] < 1.02 && amp[512] < 1.02);
  figure.check("1 KB: prefetch helps with 15-60% read amplification",
               gain[1024] > 0.2 && amp[1024] > 1.15 && amp[1024] < 1.6);
  figure.check("4 KB is the most effective block size",
               on_gbps[4096] > on_gbps[2048] && on_gbps[4096] > on_gbps[5120]);
  figure.check("4 KB has no amplification (page-clipped)",
               amp[4096] < 1.02);
  figure.check("5 KB shows mixed behaviour (some amplification)",
               amp[5120] > 1.02 && on_gbps[5120] < on_gbps[4096]);
  return figure.run(argc, argv);
}
