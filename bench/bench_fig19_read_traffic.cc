// Figure 19: read traffic at the three layers (encode demand, memory
// controller, PM media) for RS(28,24) 1 KB encoding, under low pressure
// (1 thread) and high pressure (18 threads), ISA-L vs DIALGA.
// Traffic is normalized to the encode layer.
//
// Paper shape: low pressure — the prefetcher's inaccuracy amplifies
// controller+media traffic for ISA-L; DIALGA's software prefetches
// train the streamer and add even more controller traffic, a deliberate
// trade under spare bandwidth. High pressure — ISA-L's media
// amplification explodes (22.3 % -> 65.8 %, buffer thrashing); DIALGA
// defeats the streamer, widens the loop granularity and cuts media
// amplification by ~77 %.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.19  Read traffic by layer, RS(28,24) 1KB (normalized to encode)",
      {"pressure", "system", "encode", "mem_ctrl", "pm_media",
       "media_amp"});

  std::map<std::pair<std::size_t, int>, double> media;  // (threads, sys)
  for (const std::size_t threads : {1u, 18u}) {
    for (const fig::System s : {fig::System::kIsal, fig::System::kDialga}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = 28;
      wl.m = 24;
      wl.block_size = 1024;
      wl.threads = threads;
      wl.total_data_bytes = (8 + 3 * threads) * fig::kMiB;
      const auto r = fig::RunEncodeSystem(s, cfg, wl);

      const double enc = static_cast<double>(r.pmu.encode_read_bytes);
      const double mc = static_cast<double>(r.pmu.mc_read_bytes) / enc;
      const double media_ratio =
          static_cast<double>(r.pmu.pm_media_read_bytes) / enc;
      media[{threads, static_cast<int>(s)}] = media_ratio;
      const std::string pressure =
          threads == 1 ? "low (1 thr)" : "high (18 thr)";
      figure.point(
          "fig19/" + pressure + "/" + fig::Name(s),
          {pressure, fig::Name(s), "1.00", bench_util::Table::num(mc),
           bench_util::Table::num(media_ratio),
           bench_util::Table::pct(media_ratio - 1.0)},
          r, {{"mc_ratio", mc}, {"media_ratio", media_ratio}});
    }
  }
  using fig::System;
  figure.check("ISA-L amplifies media reads even at low pressure",
               media[{1, static_cast<int>(System::kIsal)}] > 1.15);
  figure.check("high pressure explodes ISA-L's media amplification",
               media[{18, static_cast<int>(System::kIsal)}] >
                   1.5 * media[{1, static_cast<int>(System::kIsal)}]);
  figure.check("DIALGA removes the high-pressure amplification",
               media[{18, static_cast<int>(System::kDialga)}] <
                   0.5 * media[{18, static_cast<int>(System::kIsal)}]);
  return figure.run(argc, argv);
}
