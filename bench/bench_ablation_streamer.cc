// Ablation: L2 stream-table capacity (Observation 3's cross-generation
// note). The paper finds Cascade Lake tracks 32 unidirectional streams
// and Ice Lake and later track 64 — and that even 64 "remains
// insufficient for wide stripe encoding". Sweep the modelled capacity
// at several stripe widths to locate the cliff for each generation.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Ablation  stream-table capacity vs stripe width (ISA-L, 4KB, PM)",
      {"streams", "k=16", "k=32", "k=48", "k=64", "k=96", "k=128"});

  std::map<std::pair<std::size_t, std::size_t>, double> gbps;
  for (const std::size_t cap : {16u, 32u, 64u}) {
    std::vector<std::string> row{std::to_string(cap)};
    for (const std::size_t k : {16u, 32u, 48u, 64u, 96u, 128u}) {
      simmem::SimConfig cfg;
      cfg.prefetcher.stream_capacity = cap;
      bench_util::WorkloadConfig wl;
      wl.k = k;
      wl.m = 4;
      wl.block_size = 4096;
      wl.total_data_bytes = 24 * fig::kMiB;
      const auto r = fig::RunEncodeSystem(fig::System::kIsal, cfg, wl);
      gbps[{cap, k}] = r.gbps;
      row.push_back(bench_util::Table::num(r.gbps));
      fig::RegisterPoint("ablation_streamer/cap:" + std::to_string(cap) +
                             "/k:" + std::to_string(k),
                         [r] {
                           return std::pair{r,
                                            std::map<std::string, double>{}};
                         });
    }
    figure.missing(std::move(row));
  }
  figure.check("16-stream table collapses already at k=32",
               gbps[{16, 32}] < 0.5 * gbps[{32, 32}]);
  figure.check("64-stream table (Ice Lake+) rescues k=48",
               gbps[{64, 48}] > 2.0 * gbps[{32, 48}]);
  figure.check("even 64 streams are insufficient for k=96 (paper's note)",
               gbps[{64, 96}] < 0.5 * gbps[{64, 64}]);
  return figure.run(argc, argv);
}
