// Figure 3: RS(12,8) encoding of random 1 KB stripes — throughput and
// L3-cache-miss stall per load, for data sourced from DRAM vs PM with
// the hardware prefetcher disabled/enabled.
//
// Paper shape: DRAM beats PM at both settings; enabling the prefetcher
// helps DRAM more than PM (its efficiency on PM is smaller).
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.3  RS(12,8) 1KB random-stripe encode, load source x HW prefetch",
      {"source", "hw_pf", "GB/s", "L3-miss-stall/load (ns)", "speedup_vs_off"});

  std::map<std::pair<bool, bool>, double> gbps;  // (pm, pf) -> GB/s
  for (const bool pm : {false, true}) {
    double off_gbps = 0.0;
    for (const bool pf : {false, true}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = 12;
      wl.m = 8;
      wl.block_size = 1024;
      wl.total_data_bytes = 24 * fig::kMiB;
      wl.data_kind = pm ? simmem::MemKind::kPm : simmem::MemKind::kDram;
      wl.parity_kind = wl.data_kind;
      const auto r =
          fig::RunEncodeSystem(fig::System::kIsal, cfg, wl,
                               ec::SimdWidth::kAvx512, pf);
      if (!pf) off_gbps = r.gbps;
      gbps[{pm, pf}] = r.gbps;
      const double miss_per_load =
          r.pmu.llc_miss_stall_ns / static_cast<double>(r.pmu.loads);
      const std::string src = pm ? "PM" : "DRAM";
      figure.point(
          "fig3/" + src + (pf ? "/pf_on" : "/pf_off"),
          {src, pf ? "on" : "off", bench_util::Table::num(r.gbps),
           bench_util::Table::num(miss_per_load),
           pf ? bench_util::Table::pct(r.gbps / off_gbps - 1.0) : "-"},
          r, {{"miss_stall_per_load_ns", miss_per_load}});
    }
  }
  figure.check("DRAM outperforms PM with prefetcher off",
               gbps[{false, false}] > gbps[{true, false}]);
  figure.check("DRAM outperforms PM with prefetcher on",
               gbps[{false, true}] > gbps[{true, true}]);
  figure.check("prefetcher helps DRAM more than PM (relative gain)",
               gbps[{false, true}] / gbps[{false, false}] >
                   gbps[{true, true}] / gbps[{true, false}]);
  return figure.run(argc, argv);
}
