// Figure 15: encode throughput under AVX512 vs AVX256 (1 KB blocks, PM).
//
// Paper shape: halving the SIMD width costs ISA-L only 12.3-23.6 %
// (it is memory-latency-bound) but DIALGA 24.9-31.1 % (its effective
// prefetching exposes the compute); DIALGA still wins by 37.5-104.4 %.
// Zerasure/Cerasure are AVX256-only and unaffected.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.15  AVX512 vs AVX256 encode throughput (1KB blocks, PM)",
      {"k", "m", "system", "AVX512", "AVX256", "degradation"});

  std::map<std::pair<std::size_t, int>, std::pair<double, double>>
      results;  // (k, system) -> (avx512, avx256)
  const std::pair<std::size_t, std::size_t> codes[] = {
      {12, 8}, {28, 24}, {52, 48}};
  for (const auto& [k, m] : codes) {
    for (const fig::System s :
         {fig::System::kIsal, fig::System::kCerasure, fig::System::kDialga}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = k;
      wl.m = m;
      wl.block_size = 1024;
      wl.total_data_bytes = 16 * fig::kMiB;

      const auto wide = fig::RunEncodeSystem(s, cfg, wl,
                                             ec::SimdWidth::kAvx512);
      const auto narrow = fig::RunEncodeSystem(s, cfg, wl,
                                               ec::SimdWidth::kAvx256);
      results[{k, static_cast<int>(s)}] = {wide.gbps, narrow.gbps};
      const std::string code =
          std::to_string(k) + "," + std::to_string(m);
      figure.point("fig15/" + std::string(fig::Name(s)) + "/RS(" + code +
                       ")/avx512",
                   {std::to_string(k), std::to_string(m), fig::Name(s),
                    bench_util::Table::num(wide.gbps),
                    bench_util::Table::num(narrow.gbps),
                    bench_util::Table::pct(1.0 - narrow.gbps / wide.gbps)},
                   wide, {{"avx256_GBps", narrow.gbps}});
      fig::RegisterPoint(
          "fig15/" + std::string(fig::Name(s)) + "/RS(" + code +
              ")/avx256",
          [narrow] {
            return std::pair{narrow, std::map<std::string, double>{}};
          });
    }
  }
  using fig::System;
  const auto drop = [&](std::size_t k, System s) {
    const auto [w, n] = results[{k, static_cast<int>(s)}];
    return 1.0 - n / w;
  };
  figure.check("ISA-L's AVX256 drop is moderate (memory-bound)",
               drop(28, System::kIsal) > 0.05 &&
                   drop(28, System::kIsal) < 0.35);
  figure.check("DIALGA degrades more than ISA-L (compute exposed)",
               drop(28, System::kDialga) > drop(28, System::kIsal));
  figure.check("AVX256-only Cerasure is unaffected",
               drop(28, System::kCerasure) < 0.02);
  figure.check("DIALGA still wins under AVX256",
               results[{28, static_cast<int>(System::kDialga)}].second >
                   results[{28, static_cast<int>(System::kIsal)}].second);
  return figure.run(argc, argv);
}
