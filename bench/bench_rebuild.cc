// Extension: node-rebuild throughput. When a device dies, the system
// re-reads k survivors of every stripe and regenerates the lost blocks
// — a decode-heavy, highly concurrent workload (the scenario behind the
// paper's decode analysis, Fig. 14, pushed to full-system scale). The
// rebuild read path has the same k-stream shape as encoding, so
// DIALGA's scheduling applies directly.
#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Extension  rebuild (single device loss) throughput, 1KB blocks, PM",
      {"code", "threads", "ISA-L GB/s", "DIALGA GB/s", "gain",
       "media_amp(DIALGA)"});

  struct Shape {
    std::size_t k, m;
  };
  const Shape shapes[] = {{12, 4}, {28, 24}};
  for (const Shape& sh : shapes) {
    for (const std::size_t threads : {1u, 4u, 8u, 12u, 18u}) {
      simmem::SimConfig cfg;
      bench_util::WorkloadConfig wl;
      wl.k = sh.k;
      wl.m = sh.m;
      wl.block_size = 1024;
      wl.threads = threads;
      wl.total_data_bytes = (8 + 2 * threads) * fig::kMiB;
      // One device lost: a single erased block per stripe.
      const std::vector<std::size_t> erasures{0};

      const auto base =
          fig::RunDecodeSystem(fig::System::kIsal, cfg, wl, erasures);
      const auto ours =
          fig::RunDecodeSystem(fig::System::kDialga, cfg, wl, erasures);
      const std::string code =
          "RS(" + std::to_string(sh.k) + "," + std::to_string(sh.m) + ")";
      figure.point(
          "rebuild/" + code + "/threads:" + std::to_string(threads),
          {code, std::to_string(threads), bench_util::Table::num(base.gbps),
           bench_util::Table::num(ours.gbps),
           bench_util::Table::pct(ours.gbps / base.gbps - 1.0),
           bench_util::Table::num(ours.media_amplification())},
          ours, {{"isal_GBps", base.gbps}});
    }
  }

  // Host-pool rebuild: the same single-device-loss decode executed
  // functionally (real buffers, real repair) on the persistent pool,
  // reused across both shapes; a failure count of zero pins the clean
  // path (repair::ScrubStripes handles the selective-retry case).
  {
    figure.host_series_title("host work-stealing pool, functional rebuild");
    bool all_repaired = true;
    for (const Shape& sh : {Shape{12, 4}, Shape{28, 24}}) {
      const ec::IsalCodec host_codec(sh.k, sh.m);
      bench_util::WorkloadConfig hwl;
      hwl.k = sh.k;
      hwl.m = sh.m;
      hwl.block_size = 1024;
      hwl.total_data_bytes = 2 * fig::kMiB;
      const std::vector<std::size_t> erasures{0};
      const auto hr = bench_util::RunHostScrub(hwl, host_codec, erasures,
                                               fig::HostPool());
      all_repaired &= hr.failed_stripes == 0;
      const std::string code =
          "RS(" + std::to_string(sh.k) + "," + std::to_string(sh.m) + ")";
      figure.host_point("rebuild/host_pool/" + code, code, hr,
                        fig::HostPool().worker_count());
    }
    figure.check("host rebuild repairs every stripe", all_repaired);
  }
  return figure.run(argc, argv);
}
