// Figure 14: decode throughput vs stripe width (m = 4 erasure repair,
// 1 KB blocks, PM).
//
// Paper shape: XOR-based codecs collapse — their decode bit-matrix is
// derived from the (optimized) encode matrix and cannot itself be
// optimized; table-lookup decode keeps its encode-side structure.
// DIALGA +142.1-340.7 % over Cerasure and +76.1-88.1 % over ISA-L.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.14  Decode throughput vs k (m=4 erased, 1KB blocks, PM)",
      {"k", "ISA-L", "Zerasure", "Cerasure", "DIALGA"});

  std::map<std::pair<std::size_t, int>, double> gbps;
  for (const std::size_t k : {8u, 12u, 16u, 24u, 32u, 48u}) {
    simmem::SimConfig cfg;
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = 4;
    wl.block_size = 1024;
    wl.total_data_bytes = 16 * fig::kMiB;
    // Worst case: the first m data blocks erased; decode reads k
    // survivors (remaining data + all parity).
    const std::vector<std::size_t> erasures{0, 1, 2, 3};

    std::vector<std::string> row{std::to_string(k)};
    for (const fig::System s :
         {fig::System::kIsal, fig::System::kZerasure, fig::System::kCerasure,
          fig::System::kDialga}) {
      const auto r = fig::RunDecodeSystem(s, cfg, wl, erasures);
      if (r.payload_bytes == 0) {
        row.push_back("n/a");
        continue;
      }
      gbps[{k, static_cast<int>(s)}] = r.gbps;
      row.push_back(bench_util::Table::num(r.gbps));
      fig::RegisterPoint(
          std::string("fig14/") + fig::Name(s) + "/k:" + std::to_string(k),
          [r] {
            return std::pair{r, std::map<std::string, double>{}};
          });
    }
    figure.missing(std::move(row));
  }
  using fig::System;
  const auto g = [&](std::size_t k, System s) {
    return gbps[{k, static_cast<int>(s)}];
  };
  figure.check("table-lookup decode beats XOR decode at every k",
               g(8, System::kIsal) > g(8, System::kCerasure) &&
                   g(24, System::kIsal) > g(24, System::kCerasure));
  figure.check("DIALGA leads ISA-L throughout",
               g(8, System::kDialga) > g(8, System::kIsal) &&
                   g(32, System::kDialga) > g(32, System::kIsal));
  figure.check("XOR decode stays flat/declining with k",
               g(32, System::kCerasure) < 1.1 * g(8, System::kCerasure));
  return figure.run(argc, argv);
}
