// Ablation: the lightweight operator's two claims (section 4.2).
//
//  1. The static shuffle mapping works as a function-level hardware-
//     prefetcher switch: shuffled plans must behave like a BIOS-level
//     disable (and cost almost nothing vs it).
//  2. The branchless pipelined prefetch interface matters: charging a
//     per-prefetch branch-misprediction penalty (the naive schedulable
//     interface) erases a measurable share of the gain.
//  3. The hill-climbed distance beats naive fixed choices.
#include "fig_common.h"

namespace {

bench_util::RunResult RunWithOptions(const ec::IsalPlanOptions& opts,
                                     bool hw_prefetch,
                                     const simmem::SimConfig& cfg,
                                     const bench_util::WorkloadConfig& wl) {
  const ec::IsalCodec codec(wl.k, wl.m);
  ec::FixedPlanProvider provider(
      codec.encode_plan_with(wl.block_size, cfg.cost, opts));
  return bench_util::RunTimed(cfg, wl, provider, hw_prefetch);
}

}  // namespace

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Ablation  operator mechanisms, RS(12,4) 1KB PM single-thread",
      {"variant", "GB/s", "hw_pf_issued", "note"});

  simmem::SimConfig cfg;
  bench_util::WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 24 * fig::kMiB;

  // --- 1. shuffle-as-switch ------------------------------------------
  {
    const auto bios_off =
        RunWithOptions(ec::IsalPlanOptions{}, /*hw_prefetch=*/false, cfg, wl);
    ec::IsalPlanOptions shuffled;
    shuffled.shuffle_rows = true;
    const auto shuffle_off =
        RunWithOptions(shuffled, /*hw_prefetch=*/true, cfg, wl);
    figure.point("ablation_op/bios_disable",
                 {"BIOS prefetch disable", bench_util::Table::num(bios_off.gbps),
                  std::to_string(bios_off.pmu.hw_prefetches_issued), "-"},
                 bios_off);
    figure.point(
        "ablation_op/shuffle_disable",
        {"shuffle mapping (streamer on)",
         bench_util::Table::num(shuffle_off.gbps),
         std::to_string(shuffle_off.pmu.hw_prefetches_issued),
         "defeats streamer at function level"},
        shuffle_off,
        {{"hw_pf_issued",
          static_cast<double>(shuffle_off.pmu.hw_prefetches_issued)}});
  }

  // --- 2. branchless vs naive prefetch interface ----------------------
  {
    ec::IsalPlanOptions branchless;
    branchless.prefetch_distance = 24;
    const auto fast = RunWithOptions(branchless, true, cfg, wl);
    ec::IsalPlanOptions naive = branchless;
    naive.naive_prefetch_penalty_cycles = 14.0;  // branch miss ~14 cycles
    const auto slow = RunWithOptions(naive, true, cfg, wl);
    figure.point("ablation_op/branchless_pf",
                 {"branchless sw prefetch d=24",
                  bench_util::Table::num(fast.gbps), "-", "-"},
                 fast);
    figure.point(
        "ablation_op/naive_pf",
        {"naive (branchy) sw prefetch d=24",
         bench_util::Table::num(slow.gbps), "-",
         bench_util::Table::pct(1.0 - slow.gbps / fast.gbps) + " lost"},
        slow);
  }

  // --- 3. fixed distances vs the hill-climbed coordinator -------------
  for (const std::size_t d : {4u, 12u, 48u, 128u}) {
    ec::IsalPlanOptions fixed;
    fixed.prefetch_distance = d;
    const auto r = RunWithOptions(fixed, true, cfg, wl);
    figure.point("ablation_op/fixed_d:" + std::to_string(d),
                 {"fixed d=" + std::to_string(d),
                  bench_util::Table::num(r.gbps), "-", "-"},
                 r);
  }
  {
    const dialga::DialgaCodec codec(wl.k, wl.m);
    auto provider =
        codec.make_encode_provider({wl.k, wl.m, wl.block_size, 1}, cfg);
    const auto r = bench_util::RunTimed(cfg, wl, *provider);
    figure.point("ablation_op/hill_climbed",
                 {"DIALGA (hill-climbed d)", bench_util::Table::num(r.gbps),
                  "-", "adaptive"},
                 r);
  }
  return figure.run(argc, argv);
}
