// Ablation: PM read-buffer capacity under high concurrency — the
// physical basis of Eq. 1. RS(28,24) 1 KB at 18 threads needs
// 18 x 28 x 256 B = 126 KB of concurrently live XPLines: buffers below
// that thrash (wasted fills, media amplification), larger buffers
// restore scalability. DIALGA's buffer-friendly mode should stay flat.
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Ablation  PM read-buffer size @18 threads, RS(28,24) 1KB",
      {"buffer_KB", "system", "GB/s", "media_amp", "wasted_fills"});

  std::map<std::pair<std::size_t, int>, double> gbps, amp;
  for (const std::size_t per_channel_kb : {4u, 8u, 16u, 32u, 64u}) {
    for (const fig::System s : {fig::System::kIsal, fig::System::kDialga}) {
      simmem::SimConfig cfg;
      cfg.pm.read_buffer_bytes_per_channel = per_channel_kb * 1024;
      bench_util::WorkloadConfig wl;
      wl.k = 28;
      wl.m = 24;
      wl.block_size = 1024;
      wl.threads = 18;
      wl.total_data_bytes = 48 * fig::kMiB;
      const auto r = fig::RunEncodeSystem(s, cfg, wl);
      gbps[{per_channel_kb, static_cast<int>(s)}] = r.gbps;
      amp[{per_channel_kb, static_cast<int>(s)}] = r.media_amplification();
      const std::size_t total_kb = per_channel_kb * cfg.pm.channels;
      figure.point(
          "ablation_buffer/" + std::string(fig::Name(s)) +
              "/KB:" + std::to_string(total_kb),
          {std::to_string(total_kb), fig::Name(s),
           bench_util::Table::num(r.gbps),
           bench_util::Table::num(r.media_amplification()),
           std::to_string(r.pmu.pm_buffer_wasted_fills)},
          r, {{"media_amp", r.media_amplification()}});
    }
  }
  using fig::System;
  // Throughput only partially recovers (the write path and media
  // bandwidth still bind at 18 threads); the clean Eq. 1 signal is the
  // thrashing itself: amplification collapses once the buffer holds
  // the 18 x 28-stream working set.
  figure.check("larger read buffers stop the thrashing (Eq. 1)",
               amp[{4, static_cast<int>(System::kIsal)}] >
                   2.0 * amp[{64, static_cast<int>(System::kIsal)}]);
  figure.check("larger buffers still help ISA-L throughput",
               gbps[{64, static_cast<int>(System::kIsal)}] >
                   1.1 * gbps[{4, static_cast<int>(System::kIsal)}]);
  figure.check("DIALGA's BF mode is insensitive to buffer size (<25%)",
               gbps[{64, static_cast<int>(System::kDialga)}] <
                   1.25 * gbps[{4, static_cast<int>(System::kDialga)}]);
  return figure.run(argc, argv);
}
