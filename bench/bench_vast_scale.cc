// Extension: VAST-class stripe widths beyond GF(2^8)'s 256-block limit,
// using the GF(2^16) codec. The paper cites VAST's k = 154 as the
// motivating wide-stripe system (Observation 3); production systems
// pushing past k + m = 256 must move to 16-bit symbols. The streamer
// is long dead at these widths — this measures how far pipelined
// software prefetching carries, and what the doubled GF(2^16) compute
// costs on top.
#include "ec/rs16.h"
#include "fig_common.h"

namespace {

bench_util::RunResult RunRs16(const simmem::SimConfig& cfg,
                              bench_util::WorkloadConfig wl,
                              const ec::IsalPlanOptions& opts) {
  const ec::Rs16Codec codec(wl.k, wl.m);
  ec::FixedPlanProvider provider(
      codec.encode_plan_with(wl.block_size, cfg.cost, opts));
  return bench_util::RunTimed(cfg, wl, provider);
}

}  // namespace

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Extension  GF(2^16) wide stripes (m=4, 1KB blocks, PM)",
      {"k", "plain GB/s", "prefetched GB/s", "gain", "note"});

  simmem::SimConfig cfg;
  for (const std::size_t k : {64u, 128u, 154u, 256u, 400u, 512u}) {
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = 4;
    wl.block_size = 1024;
    wl.total_data_bytes = 24 * fig::kMiB;

    const auto plain = RunRs16(cfg, wl, {});
    ec::IsalPlanOptions opts;
    opts.prefetch_distance = std::min<std::size_t>(k, 192);
    opts.xpline_first_distance = opts.prefetch_distance + 4;
    const auto tuned = RunRs16(cfg, wl, opts);

    figure.point(
        "vast/k:" + std::to_string(k),
        {std::to_string(k), bench_util::Table::num(plain.gbps),
         bench_util::Table::num(tuned.gbps),
         bench_util::Table::num(tuned.gbps / plain.gbps) + "x",
         k == 154 ? "VAST's width" : (k > 252 ? "needs GF(2^16)" : "")},
        tuned, {{"plain_GBps", plain.gbps}});
  }
  return figure.run(argc, argv);
}
