// Host microbenchmarks of the FUNCTIONAL GF kernels (real wall-clock
// time, unlike every other bench in this directory, which reports
// simulated time). Useful when adopting the library to protect real
// data: shows what the scalar/SSSE3/AVX2/AVX-512/GFNI dispatch is
// worth on the build host.
//
// Before the google-benchmark entries run, a custom main measures the
// headline of this rewrite — the fused multi-parity cache-blocked
// encode against the per-coefficient unfused baseline — for every ISA
// level the host supports, prints the series, writes it as
// <stem>_kernels.csv under DIALGA_CSV_DIR (falling back to the
// current directory), and checks the fused driver is >= 1.5x the
// unfused baseline at AVX2 for the paper's k=12, m=4 shape.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_util/table.h"
#include "ec/codec_util.h"
#include "ec/isal.h"
#include "gf/gf65536.h"
#include "gf/gf_simd.h"
#include "obs/metrics.h"

namespace {

std::vector<std::byte> RandomBytes(std::size_t n) {
  std::mt19937_64 rng(1);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng());
  return v;
}

void BM_Gf8MulAcc(benchmark::State& state) {
  const auto level = static_cast<gf::IsaLevel>(state.range(0));
  if (!gf::isa_supported(level)) {
    state.SkipWithError("host/build lacks this ISA");
    return;
  }
  const gf::IsaLevel prev = gf::active_isa();
  gf::set_active_isa(level);
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  std::vector<std::byte> dst(n, std::byte{0});
  for (auto _ : state) {
    gf::mul_acc(0x53, src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
  gf::set_active_isa(prev);
}
BENCHMARK(BM_Gf8MulAcc)
    ->Arg(static_cast<int>(gf::IsaLevel::kScalar))
    ->Arg(static_cast<int>(gf::IsaLevel::kSsse3))
    ->Arg(static_cast<int>(gf::IsaLevel::kAvx2))
    ->Arg(static_cast<int>(gf::IsaLevel::kAvx512))
    ->Arg(static_cast<int>(gf::IsaLevel::kGfni));

void BM_Gf8MulAccMulti4(benchmark::State& state) {
  // One source streamed into four parity accumulators — the fused
  // kernel's raison d'etre. Compare bytes/second against BM_Gf8MulAcc
  // at the same ISA: the fused form reads the source once instead of
  // four times.
  const auto level = static_cast<gf::IsaLevel>(state.range(0));
  if (!gf::isa_supported(level)) {
    state.SkipWithError("host/build lacks this ISA");
    return;
  }
  const gf::IsaLevel prev = gf::active_isa();
  gf::set_active_isa(level);
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  gf::PreparedCoeff coeffs[4];
  for (int t = 0; t < 4; ++t) {
    coeffs[t] = gf::prepare_coeff(static_cast<gf::u8>(0x53 + t));
  }
  std::vector<std::vector<std::byte>> parity(4,
                                             std::vector<std::byte>(n));
  std::byte* dsts[4];
  for (int t = 0; t < 4; ++t) dsts[t] = parity[t].data();
  for (auto _ : state) {
    gf::mul_acc_multi(coeffs, src.data(), dsts, 4, n);
    benchmark::DoNotOptimize(dsts);
  }
  // Count parity bytes produced, matching 4 BM_Gf8MulAcc passes.
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * n * 4));
  gf::set_active_isa(prev);
}
BENCHMARK(BM_Gf8MulAccMulti4)
    ->Arg(static_cast<int>(gf::IsaLevel::kScalar))
    ->Arg(static_cast<int>(gf::IsaLevel::kSsse3))
    ->Arg(static_cast<int>(gf::IsaLevel::kAvx2))
    ->Arg(static_cast<int>(gf::IsaLevel::kAvx512))
    ->Arg(static_cast<int>(gf::IsaLevel::kGfni));

void BM_Gf16MulAcc(benchmark::State& state) {
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  std::vector<std::byte> dst(n, std::byte{0});
  for (auto _ : state) {
    gf16::mul_acc(0x1B2D, src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Gf16MulAcc);

void BM_XorAcc(benchmark::State& state) {
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  std::vector<std::byte> dst(n, std::byte{0});
  for (auto _ : state) {
    gf::xor_acc(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_XorAcc);

void BM_FunctionalEncode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 4, bs = 4096;
  const ec::IsalCodec codec(k, m);
  std::vector<std::vector<std::byte>> blocks(k + m);
  std::vector<const std::byte*> data;
  std::vector<std::byte*> parity;
  for (std::size_t i = 0; i < k; ++i) {
    blocks[i] = RandomBytes(bs);
    data.push_back(blocks[i].data());
  }
  for (std::size_t j = 0; j < m; ++j) {
    blocks[k + j].resize(bs);
    parity.push_back(blocks[k + j].data());
  }
  for (auto _ : state) {
    codec.encode(bs, data, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * k * bs));
}
BENCHMARK(BM_FunctionalEncode)->Arg(4)->Arg(12)->Arg(28);

// --- fused vs unfused headline series ------------------------------

struct Shape {
  std::size_t k, m, bs;
};

/// Median wall-clock GB/s over kReps timed batches of kInner encodes
/// each (batching keeps a single rep well above timer resolution and
/// the median rejects scheduler noise on shared CI hosts).
template <typename Fn>
double MeasureGbps(const Shape& s, Fn&& fn) {
  constexpr int kReps = 9;
  constexpr int kInner = 8;
  std::vector<double> gbps;
  fn();  // warm up caches and tables
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < kInner; ++it) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    gbps.push_back(static_cast<double>(kInner * s.k * s.bs) / sec / 1e9);
  }
  std::sort(gbps.begin(), gbps.end());
  return gbps[gbps.size() / 2];
}

std::string Stem(const char* argv0) {
  std::string stem = argv0;
  if (const auto slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  return stem;
}

/// Runs the fused-vs-unfused comparison per supported ISA, prints the
/// table, writes <stem>_kernels.csv, and returns whether the AVX2
/// acceptance bar (fused >= 1.5x unfused) holds (vacuously true when
/// the host lacks AVX2).
bool RunFusedComparison(const char* argv0) {
  const Shape s{12, 4, 64 * 1024};
  const ec::IsalCodec codec(s.k, s.m);

  std::vector<std::vector<std::byte>> blocks(s.k + s.m);
  std::vector<const std::byte*> data;
  std::vector<std::byte*> parity;
  for (std::size_t i = 0; i < s.k; ++i) {
    blocks[i] = RandomBytes(s.bs);
    data.push_back(blocks[i].data());
  }
  for (std::size_t j = 0; j < s.m; ++j) {
    blocks[s.k + j].resize(s.bs);
    parity.push_back(blocks[s.k + j].data());
  }

  bench_util::Table table(
      {"isa", "k", "m", "block_bytes", "fused_GBps", "unfused_GBps",
       "speedup"});
  const gf::IsaLevel prev = gf::active_isa();
  bool avx2_ok = true;
  for (std::size_t l = 0; l < gf::kNumIsaLevels; ++l) {
    const auto level = static_cast<gf::IsaLevel>(l);
    if (!gf::isa_supported(level)) continue;
    gf::set_active_isa(level);
    const double fused = MeasureGbps(
        s, [&] { codec.encode(s.bs, data, parity); });
    const double unfused = MeasureGbps(s, [&] {
      ec::NaiveSystematicEncode(codec.generator(), s.k, s.m, s.bs, data,
                                parity);
    });
    const double speedup = unfused > 0 ? fused / unfused : 0.0;
    table.row({gf::isa_name(level), std::to_string(s.k),
               std::to_string(s.m), std::to_string(s.bs),
               bench_util::Table::num(fused, 3),
               bench_util::Table::num(unfused, 3),
               bench_util::Table::num(speedup, 2)});
    if (level == gf::IsaLevel::kAvx2) avx2_ok = speedup >= 1.5;
  }
  gf::set_active_isa(prev);

  std::cout << "\n=== fused multi-parity encode vs per-coefficient "
               "baseline (host wall clock) ===\n";
  table.print(std::cout);
  const bool have_avx2 = gf::isa_supported(gf::IsaLevel::kAvx2);
  std::cout << "\n  ["
            << (have_avx2 ? (avx2_ok ? "PASS" : "FAIL") : "SKIP")
            << "] fused >= 1.5x unfused at avx2 (k=12, m=4, 64 KiB)\n\n";

  const char* dir = std::getenv("DIALGA_CSV_DIR");
  const std::string path =
      std::string(dir != nullptr ? dir : ".") + "/" + Stem(argv0) +
      "_kernels.csv";
  if (std::ofstream out(path); out) table.print_csv(out);
  return !have_avx2 || avx2_ok;
}

void WriteMetrics(const char* argv0) {
  if (const char* dir = std::getenv("DIALGA_CSV_DIR"); dir != nullptr) {
    const std::string base = std::string(dir) + "/" + Stem(argv0);
    obs::DumpMetricsToFile(base + "_metrics.prom");
    obs::DumpMetricsToFile(base + "_metrics.jsonl");
  }
  if (const char* out = std::getenv("DIALGA_METRICS_OUT");
      out != nullptr && *out != '\0') {
    obs::DumpMetricsToFile(out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* argv0 = argc > 0 ? argv[0] : "bench_host_kernels";
  RunFusedComparison(argv0);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Scrape last so the registry holds the kernel byte counters from
  // both the comparison series and the benchmark entries.
  WriteMetrics(argv0);
  return 0;
}
