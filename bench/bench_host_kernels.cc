// Host microbenchmarks of the FUNCTIONAL GF kernels (real wall-clock
// time, unlike every other bench in this directory, which reports
// simulated time). Useful when adopting the library to protect real
// data: shows what the scalar/SSSE3/AVX2 dispatch is worth on the
// build host.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "ec/isal.h"
#include "gf/gf65536.h"
#include "gf/gf_simd.h"

namespace {

std::vector<std::byte> RandomBytes(std::size_t n) {
  std::mt19937_64 rng(1);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng());
  return v;
}

void BM_Gf8MulAcc(benchmark::State& state) {
  const auto level = static_cast<gf::IsaLevel>(state.range(0));
  if (static_cast<int>(level) > static_cast<int>(gf::best_isa())) {
    state.SkipWithError("host lacks this ISA");
    return;
  }
  const gf::IsaLevel prev = gf::active_isa();
  gf::set_active_isa(level);
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  std::vector<std::byte> dst(n, std::byte{0});
  for (auto _ : state) {
    gf::mul_acc(0x53, src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
  gf::set_active_isa(prev);
}
BENCHMARK(BM_Gf8MulAcc)
    ->Arg(static_cast<int>(gf::IsaLevel::kScalar))
    ->Arg(static_cast<int>(gf::IsaLevel::kSsse3))
    ->Arg(static_cast<int>(gf::IsaLevel::kAvx2));

void BM_Gf16MulAcc(benchmark::State& state) {
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  std::vector<std::byte> dst(n, std::byte{0});
  for (auto _ : state) {
    gf16::mul_acc(0x1B2D, src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Gf16MulAcc);

void BM_XorAcc(benchmark::State& state) {
  const std::size_t n = 64 * 1024;
  const auto src = RandomBytes(n);
  std::vector<std::byte> dst(n, std::byte{0});
  for (auto _ : state) {
    gf::xor_acc(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_XorAcc);

void BM_FunctionalEncode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 4, bs = 4096;
  const ec::IsalCodec codec(k, m);
  std::vector<std::vector<std::byte>> blocks(k + m);
  std::vector<const std::byte*> data;
  std::vector<std::byte*> parity;
  for (std::size_t i = 0; i < k; ++i) {
    blocks[i] = RandomBytes(bs);
    data.push_back(blocks[i].data());
  }
  for (std::size_t j = 0; j < m; ++j) {
    blocks[k + j].resize(bs);
    parity.push_back(blocks[k + j].data());
  }
  for (auto _ : state) {
    codec.encode(bs, data, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * k * bs));
}
BENCHMARK(BM_FunctionalEncode)->Arg(4)->Arg(12)->Arg(28);

}  // namespace

BENCHMARK_MAIN();
