// Developer calibration tool: prints the key observation shapes the
// model must reproduce before the figure benches mean anything.
// Not part of the figure suite; kept for re-tuning SimConfig constants.
#include <iostream>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "dialga/dialga.h"
#include "ec/isal.h"

using bench_util::RunEncode;
using bench_util::RunTimed;
using bench_util::Table;
using bench_util::WorkloadConfig;

namespace {

constexpr std::size_t kMiB = 1ull << 20;

void Fig3Shape() {
  std::cout << "\n== Fig.3 shape: RS(12,8) 1KB, load source x HW pf ==\n";
  Table t({"source", "hw_pf", "GB/s", "llc_miss_stall/load(ns)"});
  for (const bool pm : {false, true}) {
    for (const bool pf : {false, true}) {
      simmem::SimConfig cfg;
      WorkloadConfig wl;
      wl.k = 12;
      wl.m = 8;
      wl.block_size = 1024;
      wl.total_data_bytes = 16 * kMiB;
      wl.data_kind = pm ? simmem::MemKind::kPm : simmem::MemKind::kDram;
      wl.parity_kind = wl.data_kind;
      ec::IsalCodec codec(wl.k, wl.m);
      const auto r = RunEncode(cfg, wl, codec, pf);
      t.row({pm ? "PM" : "DRAM", pf ? "on" : "off", Table::num(r.gbps),
             Table::num(r.pmu.llc_miss_stall_ns /
                        static_cast<double>(r.pmu.loads))});
    }
  }
  t.print(std::cout);
}

void Fig5Shape() {
  std::cout << "\n== Fig.5 shape: k sweep (m=4, 4KB blocks, PM) ==\n";
  Table t({"k", "GB/s", "useless_pf%", "l2_pf_ratio%"});
  for (const std::size_t k : {4u, 8u, 12u, 16u, 24u, 32u, 40u, 48u}) {
    simmem::SimConfig cfg;
    WorkloadConfig wl;
    wl.k = k;
    wl.m = 4;
    wl.block_size = 4096;
    wl.total_data_bytes = 32 * kMiB;
    ec::IsalCodec codec(k, 4);
    const auto r = RunEncode(cfg, wl, codec, true);
    t.row({std::to_string(k), Table::num(r.gbps),
           Table::pct(r.pmu.useless_prefetch_ratio()),
           Table::pct(r.pmu.l2_prefetch_ratio())});
  }
  t.print(std::cout);
}

void Fig6Shape() {
  std::cout << "\n== Fig.6 shape: RS(28,24) block-size sweep, PM ==\n";
  Table t({"block", "pf", "GB/s", "media_amp"});
  for (const std::size_t bs : {256u, 512u, 1024u, 2048u, 3072u, 4096u, 5120u}) {
    for (const bool pf : {false, true}) {
      simmem::SimConfig cfg;
      WorkloadConfig wl;
      wl.k = 28;
      wl.m = 24;
      wl.block_size = bs;
      wl.total_data_bytes = 32 * kMiB;
      ec::IsalCodec codec(28, 24);
      const auto r = RunEncode(cfg, wl, codec, pf);
      t.row({std::to_string(bs), pf ? "on" : "off", Table::num(r.gbps),
             Table::num(r.media_amplification())});
    }
  }
  t.print(std::cout);
}

void Fig7Shape() {
  std::cout << "\n== Fig.7 shape: RS(28,24) 1KB thread scaling, PM ==\n";
  Table t({"threads", "pf", "GB/s", "media_amp", "wasted_fills"});
  for (const std::size_t n : {1u, 2u, 4u, 8u, 12u, 16u, 18u}) {
    for (const bool pf : {false, true}) {
      simmem::SimConfig cfg;
      WorkloadConfig wl;
      wl.k = 28;
      wl.m = 24;
      wl.block_size = 1024;
      wl.threads = n;
      wl.total_data_bytes = (16 + 4 * n) * kMiB;
      ec::IsalCodec codec(28, 24);
      const auto r = RunEncode(cfg, wl, codec, pf);
      t.row({std::to_string(n), pf ? "on" : "off", Table::num(r.gbps),
             Table::num(r.media_amplification()),
             std::to_string(r.pmu.pm_buffer_wasted_fills)});
    }
  }
  t.print(std::cout);
}

void DialgaVsIsal() {
  std::cout << "\n== DIALGA vs ISA-L: RS(12,4) 1KB single-thread, PM ==\n";
  Table t({"system", "GB/s", "sw_pf", "sw_hits", "samples"});
  simmem::SimConfig cfg;
  WorkloadConfig wl;
  wl.k = 12;
  wl.m = 4;
  wl.block_size = 1024;
  wl.total_data_bytes = 32 * kMiB;

  {
    ec::IsalCodec isal(12, 4);
    const auto r = RunEncode(cfg, wl, isal, true);
    t.row({"ISA-L", Table::num(r.gbps), "0", "0", "-"});
  }
  {
    dialga::DialgaCodec dlg(12, 4);
    auto provider = dlg.make_encode_provider(
        {wl.k, wl.m, wl.block_size, wl.threads}, cfg);
    const auto r = RunTimed(cfg, wl, *provider, true);
    t.row({"DIALGA", Table::num(r.gbps),
           std::to_string(r.pmu.sw_prefetches_issued),
           std::to_string(r.pmu.sw_prefetch_hits),
           std::to_string(provider->coordinator().samples_taken())});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  Fig3Shape();
  Fig5Shape();
  Fig6Shape();
  Fig7Shape();
  DialgaVsIsal();
  return 0;
}
