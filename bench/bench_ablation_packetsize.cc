// Ablation: the jerasure-style packet size of XOR codecs — the
// cache-efficiency knob Zerasure's search tunes. The classic DRAM-era
// trade-off is L1 residency (small packets keep the per-pass working
// set cached) vs loop overhead. On PM the model finds the trade-off
// INVERTED: larger packets read each sub-row in longer sequential runs,
// which trains the L2 streamer and amortizes XPLine fills, and the
// repeats that fall out of L1 land in L2 at nanoseconds — negligible
// next to PM latency. Packet tuning guidance from DRAM does not carry
// to PM, which is exactly the kind of assumption shift the paper's
// thesis (memory access dominates) predicts.
#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Ablation  XOR packet size (Cerasure-style codec, 4KB blocks, PM)",
      {"packet_B", "GB/s", "repeat-load penalty (avg lat ns)"});

  simmem::SimConfig cfg;
  const std::size_t k = 12, m = 4;
  double best = 0.0, worst = 1e9;
  for (const std::size_t packet : {64u, 128u, 256u, 512u}) {
    const ec::XorCodec codec(k, m, gf::cauchy_generator(k, m),
                             "Cerasure-pkt", 0, ec::SimdWidth::kAvx256,
                             packet);
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = m;
    wl.block_size = 4096;
    wl.total_data_bytes = 16 * fig::kMiB;
    const auto r = bench_util::RunEncode(cfg, wl, codec);
    best = std::max(best, r.gbps);
    worst = std::min(worst, r.gbps);
    figure.point("ablation_pkt/packet:" + std::to_string(packet),
                 {std::to_string(packet), bench_util::Table::num(r.gbps),
                  bench_util::Table::num(r.pmu.avg_load_latency_ns(), 1)},
                 r, {{"packet", static_cast<double>(packet)}});
  }
  figure.check("packet size materially affects XOR throughput (>5%)",
               best > 1.05 * worst);
  return figure.run(argc, argv);
}
