// Figure 5: impact of the number of data blocks k (m = 4, 4 KB blocks,
// PM): encode throughput, useless-prefetch ratio and L2 prefetch ratio.
//
// Paper shape, three stages: (i) k < 16 throughput climbs with the
// prefetch window; (ii) 16 < k <= 32 moderate gains; (iii) k > 32 the
// stream table overflows, the L2 prefetch ratio collapses to ~0 and
// throughput falls off a cliff.
#include <cmath>
#include <map>

#include "fig_common.h"

int main(int argc, char** argv) {
  fig::FigureBench figure(
      "Fig.5  k sweep (m=4, 4KB blocks, PM): streamer stages + cliff",
      {"k", "GB/s", "useless_pf%", "L2_pf_ratio%"});

  std::map<std::size_t, double> gbps, pf_ratio;
  for (const std::size_t k :
       {4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u, 36u, 40u, 48u, 56u}) {
    simmem::SimConfig cfg;
    bench_util::WorkloadConfig wl;
    wl.k = k;
    wl.m = 4;
    wl.block_size = 4096;
    wl.total_data_bytes = 32 * fig::kMiB;
    const auto r = fig::RunEncodeSystem(fig::System::kIsal, cfg, wl);
    gbps[k] = r.gbps;
    pf_ratio[k] = r.pmu.l2_prefetch_ratio();
    figure.point(
        "fig5/k:" + std::to_string(k),
        {std::to_string(k), bench_util::Table::num(r.gbps),
         bench_util::Table::pct(r.pmu.useless_prefetch_ratio()),
         bench_util::Table::pct(r.pmu.l2_prefetch_ratio())},
        r,
        {{"useless_pf_ratio", r.pmu.useless_prefetch_ratio()},
         {"l2_pf_ratio", r.pmu.l2_prefetch_ratio()}});
  }
  figure.check("stage (i): throughput rises from k=4 to k=16",
               gbps[16] > 1.1 * gbps[4]);
  figure.check("stage (ii): k=16..32 changes are moderate (<10%)",
               std::abs(gbps[32] - gbps[16]) < 0.10 * gbps[16]);
  figure.check("stage (iii): cliff beyond the 32-stream table",
               gbps[40] < 0.5 * gbps[32]);
  figure.check("L2 prefetch activity collapses to ~0 past k=32",
               pf_ratio[48] < 0.05 && pf_ratio[32] > 0.5);
  return figure.run(argc, argv);
}
